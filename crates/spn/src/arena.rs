//! Arena-compiled SPN: the tree flattened into contiguous struct-of-arrays
//! storage, evaluated without recursion.
//!
//! [`CompiledSpn`] is built once from an [`Spn`] and then **patched in
//! place** as updates stream in (paper Algorithm 1 never changes the
//! structure, only sum weights and leaf histograms — see [`crate::update`]'s
//! lockstep tree+arena walk). Nodes are laid out in **topological bottom-up
//! order** (every child precedes its parent, the root is last), so a single
//! forward sweep over the arrays evaluates the whole network; there is no
//! pointer chasing and no per-visit allocation.
//!
//! Sum-node counts are stored next to the frozen `count / total` mixture
//! weights; a patch adjusts the counts of the routed edges and
//! [`ArenaPatch`] defers the per-sum weight renormalization and the per-leaf
//! prefix-sum rebuild to one commit per batch — one renormalization per
//! touched sum, not per tuple. Renormalization replays the exact arithmetic
//! of [`CompiledSpn::compile`], so a patched arena is **bitwise identical**
//! to a full recompile of the patched tree (property-tested in
//! `tests/prop_update.rs`). Evaluation stays a pure `&self` operation — the
//! prerequisite for the batched evaluator in [`crate::batch`] and for
//! parallel/sharded ensembles.
//!
//! The recursive evaluator in [`crate::infer`] stays as the reference oracle;
//! differential property tests assert both paths agree. Arithmetic here
//! mirrors the recursive path operation-for-operation (same accumulation
//! order, same zero-skips), so agreement is exact, not merely approximate.
//!
//! ## Query-scoped pruning
//!
//! A query only constrains a handful of columns, so most of a wide model's
//! sub-DAG evaluates to its **query-independent** value: a marginalized leaf
//! contributes exactly `1.0`, and every inner node whose scope is disjoint
//! from the constrained columns computes the same value it would under an
//! empty query. [`CompiledSpn`] caches those values per semiring in the
//! **neutral tables** (`neutral_expect` / `neutral_mpe`, refreshed by
//! [`CompiledSpn::commit_patch`] whenever sum weights change), and
//! [`ActiveSet`] compacts the nodes that *do* depend on a given column set
//! into same-kind [`NodeRun`]s plus the boundary list of inactive children
//! whose scratch rows get seeded from the neutral table. The sweep in
//! [`crate::kernel`] then visits only active nodes; because a seeded row
//! holds bit-for-bit the value the full sweep would have computed, pruned
//! and full sweeps agree **bitwise by construction** (property-tested in
//! `tests/prop_prune.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::node::{Node, Spn};
use crate::Leaf;

/// Node kind tag in the flattened arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompiledKind {
    Sum,
    Product,
    Leaf,
}

/// A maximal run of consecutive same-kind nodes in topological order. The
/// sweep kernels in [`crate::kernel`] dispatch once per run instead of once
/// per node, so one kernel call covers every consecutive sum (or product, or
/// leaf) node. Derived from `kinds` at compile time; updates never change
/// the structure, so runs stay valid across in-place patches.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRun {
    pub kind: CompiledKind,
    /// Arena ids `[start, end)` covered by this run.
    pub start: u32,
    pub end: u32,
}

/// Sentinel for "not a leaf" in the `leaf_of` array.
const NOT_A_LEAF: u32 = u32::MAX;

/// A compiled, immutable SPN in struct-of-arrays form.
///
/// Evaluation lives in [`crate::batch::BatchEvaluator`]; this type also
/// offers a convenience single-query [`CompiledSpn::evaluate`].
#[derive(Debug)]
pub struct CompiledSpn {
    /// Node kinds in bottom-up topological order; `kinds.len() - 1` is root.
    pub(crate) kinds: Vec<CompiledKind>,
    /// Per-node range `[child_start[i], child_end[i])` into `children` /
    /// `weights`; empty for leaves.
    pub(crate) child_start: Vec<u32>,
    pub(crate) child_end: Vec<u32>,
    /// Flattened child node ids (always smaller than the parent id).
    pub(crate) children: Vec<u32>,
    /// Mixture weight per child edge (`count / total` for sum children — 0.0
    /// edges are skipped, matching the recursive evaluator; 1.0 for product
    /// edges).
    pub(crate) weights: Vec<f64>,
    /// Raw row count per child edge, aligned with `weights` (mirrors
    /// `SumNode::counts`; 0 for product edges). The patch path adjusts these
    /// and re-derives `weights` with the exact arithmetic of `compile`.
    pub(crate) counts: Vec<u64>,
    /// Per-node leaf payload index into `leaves` (`NOT_A_LEAF` for inner
    /// nodes).
    pub(crate) leaf_of: Vec<u32>,
    /// Cloned leaves with prefix sums rebuilt — immutable at query time.
    pub(crate) leaves: Vec<Leaf>,
    /// Column modeled by each leaf payload (mirrors `leaves[i].col`).
    pub(crate) leaf_col: Vec<u32>,
    /// Maximal same-kind node runs in sweep order (derived from `kinds`;
    /// rebuilt by [`CompiledSpn::compile`], never touched by patches).
    pub(crate) runs: Vec<NodeRun>,
    /// Cached [`Leaf::mode`] per leaf payload (`NaN` = empty leaf), so the
    /// max-product pass resolves a winning branch's target value in O(1)
    /// instead of re-scanning the histogram. Refreshed by
    /// [`CompiledSpn::commit_patch`] alongside the prefix sums.
    pub(crate) leaf_mode: Vec<f64>,
    /// Query-independent node value per node for the (+,×) semiring: what an
    /// empty-query sweep writes into each node's scratch row. Seeds the
    /// scratch rows of pruned-out subtrees (see [`ActiveSet`]). Refreshed by
    /// [`CompiledSpn::commit_patch`] whenever sum weights change.
    pub(crate) neutral_expect: Vec<f64>,
    /// Same for the (max,×) semiring's score lane. The companion aux lane is
    /// constantly `NO_LEAF`: a pruned subtree never contains a target leaf,
    /// because the MPE target column is always part of the active column set.
    pub(crate) neutral_mpe: Vec<f64>,
    n_cols: usize,
    n_rows: u64,
    /// Fused batch sweeps executed against this arena (diagnostics; lets
    /// tests assert "one sweep per touched model per query"). A sweep is one
    /// fused pass over a whole probe batch, regardless of how many tiles or
    /// worker threads carried it out.
    sweeps: AtomicU64,
    /// Node rows written by sweep kernels so far, accumulated per tile
    /// (diagnostics, `probe_passes`-style: lets tests assert a pruned sweep
    /// visited exactly the active nodes and nothing else).
    nodes_swept: AtomicU64,
}

impl Clone for CompiledSpn {
    fn clone(&self) -> Self {
        CompiledSpn {
            kinds: self.kinds.clone(),
            child_start: self.child_start.clone(),
            child_end: self.child_end.clone(),
            children: self.children.clone(),
            weights: self.weights.clone(),
            counts: self.counts.clone(),
            leaf_of: self.leaf_of.clone(),
            leaves: self.leaves.clone(),
            leaf_col: self.leaf_col.clone(),
            runs: self.runs.clone(),
            leaf_mode: self.leaf_mode.clone(),
            neutral_expect: self.neutral_expect.clone(),
            neutral_mpe: self.neutral_mpe.clone(),
            n_cols: self.n_cols,
            n_rows: self.n_rows,
            sweeps: AtomicU64::new(self.sweeps.load(Ordering::Relaxed)),
            nodes_swept: AtomicU64::new(self.nodes_swept.load(Ordering::Relaxed)),
        }
    }
}

impl CompiledSpn {
    /// Flatten `spn` into arena form. Cost is one tree walk plus one clone of
    /// the leaf histograms; cheap enough to re-run after a batch of updates.
    pub fn compile(spn: &Spn) -> Self {
        let mut c = CompiledSpn {
            kinds: Vec::new(),
            child_start: Vec::new(),
            child_end: Vec::new(),
            children: Vec::new(),
            weights: Vec::new(),
            counts: Vec::new(),
            leaf_of: Vec::new(),
            leaves: Vec::new(),
            leaf_col: Vec::new(),
            runs: Vec::new(),
            leaf_mode: Vec::new(),
            neutral_expect: Vec::new(),
            neutral_mpe: Vec::new(),
            n_cols: spn.n_columns(),
            n_rows: spn.n_rows(),
            sweeps: AtomicU64::new(0),
            nodes_swept: AtomicU64::new(0),
        };
        c.flatten(&spn.root);
        c.build_runs();
        c.refresh_neutral();
        c
    }

    /// Recompute the per-node neutral (empty-query) values for both
    /// semirings. The recurrences mirror the scalar sweep kernels in
    /// [`crate::kernel`] operation-for-operation with every leaf pinned to
    /// the marginalized value `1.0` — exactly what [`crate::kernel::LeafValueTable`]
    /// gathers for an unconstrained column — so a neutral entry is bitwise
    /// what a full sweep writes for a node outside the query's scope.
    /// (The SIMD kernels are bitwise-identical to the scalar ones by
    /// contract, so one scalar recurrence covers both dispatch modes.)
    pub(crate) fn refresh_neutral(&mut self) {
        let n = self.n_nodes();
        self.neutral_expect.clear();
        self.neutral_expect.resize(n, 0.0);
        self.neutral_mpe.clear();
        self.neutral_mpe.resize(n, 0.0);
        for node in 0..n {
            match self.kinds[node] {
                CompiledKind::Leaf => {
                    self.neutral_expect[node] = 1.0;
                    self.neutral_mpe[node] = 1.0;
                }
                CompiledKind::Sum => {
                    let (s, e) = self.child_range(node);
                    // (+,×): weighted accumulation, zero-weight edges skipped.
                    let mut acc = 0.0;
                    for i in s..e {
                        let w = self.weights[i];
                        if w == 0.0 {
                            continue;
                        }
                        acc += w * self.neutral_expect[self.children[i] as usize];
                    }
                    self.neutral_expect[node] = acc;
                    // (max,×): strict-greater incumbent over weighted children;
                    // an all-zero-weight sum stays at the kernel default 0.0.
                    let mut found = false;
                    let mut best = 0.0;
                    for i in s..e {
                        let w = self.weights[i];
                        if w == 0.0 {
                            continue;
                        }
                        let weighted = w * self.neutral_mpe[self.children[i] as usize];
                        if !found || weighted > best {
                            found = true;
                            best = weighted;
                        }
                    }
                    self.neutral_mpe[node] = best;
                }
                CompiledKind::Product => {
                    let (s, e) = self.child_range(node);
                    // (+,×): multiply with the scalar kernel's zero short-circuit.
                    let mut acc = 1.0;
                    for i in s..e {
                        acc *= self.neutral_expect[self.children[i] as usize];
                        if acc == 0.0 {
                            break;
                        }
                    }
                    self.neutral_expect[node] = acc;
                    // (max,×): plain product, no short-circuit.
                    let mut accm = 1.0;
                    for i in s..e {
                        accm *= self.neutral_mpe[self.children[i] as usize];
                    }
                    self.neutral_mpe[node] = accm;
                }
            }
        }
    }

    /// Scan `kinds` into maximal same-kind runs so the sweep kernels can
    /// dispatch once per run.
    fn build_runs(&mut self) {
        self.runs.clear();
        let mut start = 0usize;
        while start < self.kinds.len() {
            let kind = self.kinds[start];
            let mut end = start + 1;
            while end < self.kinds.len() && self.kinds[end] == kind {
                end += 1;
            }
            self.runs.push(NodeRun {
                kind,
                start: start as u32,
                end: end as u32,
            });
            start = end;
        }
    }

    /// Same-kind node runs in sweep (bottom-up topological) order.
    pub(crate) fn node_runs(&self) -> &[NodeRun] {
        &self.runs
    }

    /// `[start, end)` range of a node's edges in `children` / `weights`.
    #[inline(always)]
    pub(crate) fn child_range(&self, node: usize) -> (usize, usize) {
        (
            self.child_start[node] as usize,
            self.child_end[node] as usize,
        )
    }

    /// Post-order flattening; returns the arena id of `node`.
    fn flatten(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf(leaf) => {
                let mut leaf = leaf.clone();
                leaf.ensure_prefix();
                let payload = self.leaves.len() as u32;
                self.leaf_col.push(leaf.col as u32);
                self.leaf_mode.push(leaf.mode().unwrap_or(f64::NAN));
                self.leaves.push(leaf);
                self.push_node(
                    CompiledKind::Leaf,
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    payload,
                )
            }
            Node::Product(p) => {
                let ids: Vec<u32> = p.children.iter().map(|ch| self.flatten(ch)).collect();
                let weights = vec![1.0; ids.len()];
                let counts = vec![0; ids.len()];
                self.push_node(CompiledKind::Product, ids, weights, counts, NOT_A_LEAF)
            }
            Node::Sum(s) => {
                let ids: Vec<u32> = s.children.iter().map(|ch| self.flatten(ch)).collect();
                let total: u64 = s.counts.iter().sum();
                // Freeze the weights exactly as the recursive evaluator
                // computes them so both paths are bit-identical. A zeroed-out
                // sum node keeps all-zero weights and evaluates to 0.
                let weights: Vec<f64> = s
                    .counts
                    .iter()
                    .map(|&cnt| {
                        if total == 0 {
                            0.0
                        } else {
                            cnt as f64 / total as f64
                        }
                    })
                    .collect();
                self.push_node(
                    CompiledKind::Sum,
                    ids,
                    weights,
                    s.counts.clone(),
                    NOT_A_LEAF,
                )
            }
        }
    }

    fn push_node(
        &mut self,
        kind: CompiledKind,
        child_ids: Vec<u32>,
        weights: Vec<f64>,
        counts: Vec<u64>,
        payload: u32,
    ) -> u32 {
        let id = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.child_start.push(self.children.len() as u32);
        self.children.extend_from_slice(&child_ids);
        self.weights.extend_from_slice(&weights);
        self.counts.extend_from_slice(&counts);
        self.child_end.push(self.children.len() as u32);
        self.leaf_of.push(payload);
        id
    }

    /// Nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Leaf histograms in the arena.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Columns the underlying model covers.
    pub fn n_columns(&self) -> usize {
        self.n_cols
    }

    /// Rows represented at compile time.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Fused batch sweeps run against this arena so far.
    pub fn sweep_count(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Record one fused batch sweep (called once per batch by the
    /// evaluation entry points in [`crate::batch`], not per tile).
    pub(crate) fn note_sweep(&self) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Node rows written by sweep kernels against this arena so far
    /// (accumulated per tile). With pruning, a tile contributes the active
    /// node count instead of `n_nodes`, so tests can account for exactly
    /// which nodes a pruned sweep visited.
    pub fn nodes_swept(&self) -> u64 {
        self.nodes_swept.load(Ordering::Relaxed)
    }

    /// Record `n` node rows written by one tile's sweep.
    pub(crate) fn note_nodes(&self, n: u64) {
        self.nodes_swept.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience single-query evaluation (allocates a fresh scratch; for
    /// hot paths hold a [`crate::BatchEvaluator`] and batch queries).
    pub fn evaluate(&self, query: &crate::SpnQuery) -> f64 {
        crate::batch::BatchEvaluator::new().evaluate(self, std::slice::from_ref(query))[0]
    }

    /// Cached mode of a leaf payload (`None` for an empty leaf) — the O(1)
    /// lookup the max-product backtrace resolves winning branches against.
    pub(crate) fn leaf_mode(&self, payload: u32) -> Option<f64> {
        let m = self.leaf_mode[payload as usize];
        if m.is_nan() {
            None
        } else {
            Some(m)
        }
    }

    /// Convenience single-probe MPE: most probable value of column `target`
    /// given the evidence in `query`, on the compiled max-product path
    /// (allocates a fresh scratch; hot paths should hold a
    /// [`crate::MaxProductEvaluator`] and batch probes).
    pub fn most_probable_value(&self, target: usize, query: &crate::SpnQuery) -> Option<f64> {
        let probe = crate::MpeProbe::new(target, query.clone());
        crate::maxprod::MaxProductEvaluator::new().evaluate(self, std::slice::from_ref(&probe))[0]
            .value
    }

    // -- In-place patching ---------------------------------------------------
    //
    // The update walk in `crate::update` routes tuples through the tree and
    // the arena in lockstep, calling the low-level mutators below; the
    // expensive per-node finalization (weight renormalization, leaf prefix
    // rebuilds) is deferred into an `ArenaPatch` and folded to once per
    // touched node per batch by `commit_patch`.

    /// Arena id of the `k`-th child of `node` (child order mirrors the
    /// tree's, by construction of [`CompiledSpn::compile`]).
    pub(crate) fn child_id(&self, node: u32, k: usize) -> u32 {
        self.children[self.child_start[node as usize] as usize + k]
    }

    /// Leaf payload index of a leaf node.
    pub(crate) fn leaf_payload(&self, node: u32) -> u32 {
        let payload = self.leaf_of[node as usize];
        debug_assert_ne!(payload, NOT_A_LEAF, "node {node} is not a leaf");
        payload
    }

    /// Mutable access to a leaf histogram by payload index (patching applies
    /// the same `Leaf::insert`/`Leaf::remove` as the tree copy receives, so
    /// both stay bitwise identical).
    pub(crate) fn leaf_mut(&mut self, payload: u32) -> &mut Leaf {
        &mut self.leaves[payload as usize]
    }

    /// Adjust the raw count of sum edge `(node, k)`. Weights are stale until
    /// [`CompiledSpn::commit_patch`] renormalizes the touched sums.
    pub(crate) fn sum_count_delta(&mut self, node: u32, k: usize, delta: i64) {
        debug_assert_eq!(self.kinds[node as usize], CompiledKind::Sum);
        let e = self.child_start[node as usize] as usize + k;
        self.counts[e] = (self.counts[e] as i64 + delta).max(0) as u64;
    }

    /// Recompute one sum node's weights from its counts — the same
    /// `cnt / total` arithmetic as [`CompiledSpn::compile`], so a patched
    /// arena and a recompiled one agree bitwise.
    fn renormalize_sum(&mut self, node: u32) {
        let (s, e) = (
            self.child_start[node as usize] as usize,
            self.child_end[node as usize] as usize,
        );
        let total: u64 = self.counts[s..e].iter().sum();
        for i in s..e {
            self.weights[i] = if total == 0 {
                0.0
            } else {
                self.counts[i] as f64 / total as f64
            };
        }
    }

    /// Apply the deferred finalization of a patch batch: renormalize every
    /// touched sum once, rebuild every touched leaf's prefix sums **and its
    /// cached mode** once, refresh the neutral tables if any weights moved,
    /// and sync the represented row count.
    pub(crate) fn commit_patch(&mut self, patch: ArenaPatch, n_rows: u64) {
        let weights_moved = !patch.touched_sums.is_empty();
        for node in patch.touched_sums {
            self.renormalize_sum(node);
        }
        for payload in patch.touched_leaves {
            let leaf = &mut self.leaves[payload as usize];
            leaf.ensure_prefix();
            self.leaf_mode[payload as usize] = leaf.mode().unwrap_or(f64::NAN);
        }
        // Neutral values depend only on the sum weights (every leaf pins to
        // 1.0), so leaf-only patches leave them untouched; a renormalized sum
        // can shift neutrals arbitrarily far up the DAG, so recompute whole.
        if weights_moved {
            self.refresh_neutral();
        }
        self.n_rows = n_rows;
    }

    /// Bitwise structural equality with another arena (weights compared by
    /// bit pattern; the sweep diagnostics counter is ignored). This is the
    /// acceptance check of the incremental patch path: after any update
    /// stream, the patched arena must equal a full recompile exactly.
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.kinds == other.kinds
            && self.child_start == other.child_start
            && self.child_end == other.child_end
            && self.children == other.children
            && self.counts == other.counts
            && self.leaf_of == other.leaf_of
            && self.leaf_col == other.leaf_col
            && self.leaf_mode.len() == other.leaf_mode.len()
            && self
                .leaf_mode
                .iter()
                .zip(&other.leaf_mode)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.n_cols == other.n_cols
            && self.n_rows == other.n_rows
            && self.weights.len() == other.weights.len()
            && self
                .weights
                .iter()
                .zip(&other.weights)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.leaves.len() == other.leaves.len()
            && self
                .leaves
                .iter()
                .zip(&other.leaves)
                .all(|(a, b)| a.bitwise_eq(b))
            && self.neutral_expect.len() == other.neutral_expect.len()
            && self
                .neutral_expect
                .iter()
                .zip(&other.neutral_expect)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.neutral_mpe.len() == other.neutral_mpe.len()
            && self
                .neutral_mpe
                .iter()
                .zip(&other.neutral_mpe)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Build the [`ActiveSet`] for a set of constrained/target columns: one
    /// bottom-up walk marks every node whose scope intersects `columns`
    /// (a leaf is active iff its column is listed; an inner node iff any
    /// child is), then active nodes are compacted into maximal same-kind
    /// consecutive runs and the inactive children read by active parents are
    /// collected as neutral-table seeds.
    ///
    /// `columns` may repeat and arrive in any order; out-of-range columns
    /// are ignored (they intersect no scope). An empty/irrelevant set marks
    /// nothing and the root row itself becomes the lone seed.
    pub fn active_set(&self, columns: &[usize]) -> ActiveSet {
        let n = self.n_nodes();
        let mut col_mask = vec![false; self.n_cols];
        for &c in columns {
            if c < self.n_cols {
                col_mask[c] = true;
            }
        }
        let mut active = vec![false; n];
        let mut n_active = 0u32;
        for node in 0..n {
            let is_active = match self.kinds[node] {
                CompiledKind::Leaf => col_mask[self.leaf_col[self.leaf_of[node] as usize] as usize],
                _ => {
                    let (s, e) = self.child_range(node);
                    self.children[s..e].iter().any(|&c| active[c as usize])
                }
            };
            active[node] = is_active;
            n_active += is_active as u32;
        }
        // Compact active nodes into maximal same-kind consecutive runs
        // (contiguity breaks at inactive nodes, so node ids are preserved
        // and the kernels' children-before-parent scratch split still holds).
        let mut runs = Vec::new();
        let mut node = 0usize;
        while node < n {
            if !active[node] {
                node += 1;
                continue;
            }
            let kind = self.kinds[node];
            let mut end = node + 1;
            while end < n && active[end] && self.kinds[end] == kind {
                end += 1;
            }
            runs.push(NodeRun {
                kind,
                start: node as u32,
                end: end as u32,
            });
            node = end;
        }
        // Seeds: inactive children read by at least one active parent, plus
        // the root itself when nothing at all is active (the sweep output
        // row must still be written).
        let mut seeded = vec![false; n];
        let mut seeds = Vec::new();
        for node in 0..n {
            if !active[node] {
                continue;
            }
            let (s, e) = self.child_range(node);
            for &c in &self.children[s..e] {
                let c = c as usize;
                if !active[c] && !seeded[c] {
                    seeded[c] = true;
                    seeds.push(c as u32);
                }
            }
        }
        if n_active == 0 && n > 0 {
            seeds.push(n as u32 - 1);
        }
        seeds.sort_unstable();
        ActiveSet {
            runs,
            seeds,
            n_active,
            n_nodes: n as u32,
        }
    }
}

/// The query-scoped slice of an arena: which nodes a given set of
/// constrained/target columns can actually influence, compacted for the
/// sweep. Built by [`CompiledSpn::active_set`], cached per query shape by
/// the planner, and consumed by [`crate::kernel::SweepScratch`]: seed rows
/// get their scratch filled from the neutral tables, then only the
/// compacted runs are dispatched. Structure depends only on node scopes, so
/// an `ActiveSet` stays valid across in-place patches (which never change
/// structure); the *values* seeded from the neutral tables are the part
/// [`CompiledSpn::commit_patch`] keeps fresh.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Maximal same-kind runs over active node ids, sweep order.
    pub(crate) runs: Vec<NodeRun>,
    /// Inactive nodes read by an active parent (deduped, ascending); their
    /// scratch rows are seeded from the neutral table before the sweep. When
    /// nothing is active this is just the root.
    pub(crate) seeds: Vec<u32>,
    n_active: u32,
    pub(crate) n_nodes: u32,
}

impl ActiveSet {
    /// Active nodes this set sweeps.
    pub fn n_active(&self) -> usize {
        self.n_active as usize
    }

    /// Boundary rows seeded from the neutral table.
    pub fn n_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Fraction of the arena a pruned sweep visits (`n_active / n_nodes`).
    pub fn active_fraction(&self) -> f64 {
        if self.n_nodes == 0 {
            return 0.0;
        }
        self.n_active as f64 / self.n_nodes as f64
    }

    /// Compacted same-kind runs over active nodes, sweep order.
    pub(crate) fn runs(&self) -> &[NodeRun] {
        &self.runs
    }

    /// Seed node ids (inactive children of active parents), ascending.
    pub(crate) fn seeds(&self) -> &[u32] {
        &self.seeds
    }
}

/// Deferred finalization of an in-place arena patch batch: records which
/// sums and leaves a batch of routed tuples touched, so renormalization and
/// prefix rebuilds run once per node per batch (not per tuple). Created by
/// the patched update entry points in [`crate::update`], consumed by
/// [`CompiledSpn::commit_patch`].
#[derive(Debug, Default)]
pub(crate) struct ArenaPatch {
    touched_sums: Vec<u32>,
    touched_leaves: Vec<u32>,
    sum_seen: std::collections::HashSet<u32>,
    leaf_seen: std::collections::HashSet<u32>,
}

impl ArenaPatch {
    pub(crate) fn touch_sum(&mut self, node: u32) {
        if self.sum_seen.insert(node) {
            self.touched_sums.push(node);
        }
    }

    pub(crate) fn touch_leaf(&mut self, payload: u32) {
        if self.leaf_seen.insert(payload) {
            self.touched_leaves.push(payload);
        }
    }
}

impl Spn {
    /// Compile this SPN into the arena representation. The result is a
    /// snapshot: later tree-only [`Spn::insert`]/[`Spn::delete`] calls do
    /// not affect it. The patched update entry points
    /// ([`Spn::insert_patch`], [`Spn::insert_batch`], …) keep an arena in
    /// sync in place, so recompilation is only needed after structural
    /// changes (or to bootstrap an arena for a freshly loaded tree).
    pub fn compile(&self) -> CompiledSpn {
        CompiledSpn::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, DataView, LeafFunc, LeafPred, SpnParams, SpnQuery};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn sample_spn(n: usize, seed: u64) -> Spn {
        let mut rng = lcg(seed);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for _ in 0..n {
            if rng() < 0.3 {
                a.push(0.0);
                b.push(60.0 + (rng() * 40.0).floor());
            } else {
                a.push(1.0);
                b.push(20.0 + (rng() * 30.0).floor());
            }
        }
        let cols = vec![a, b];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        Spn::learn(DataView::new(&cols, &meta), &SpnParams::default())
    }

    #[test]
    fn arena_preserves_node_count_and_topology() {
        let spn = sample_spn(3000, 7);
        let compiled = spn.compile();
        assert_eq!(compiled.n_nodes(), spn.size());
        assert_eq!(compiled.n_columns(), spn.n_columns());
        assert_eq!(compiled.n_rows(), spn.n_rows());
        // Bottom-up order: every child id is smaller than its parent's.
        for node in 0..compiled.n_nodes() {
            let (s, e) = (
                compiled.child_start[node] as usize,
                compiled.child_end[node] as usize,
            );
            for &child in &compiled.children[s..e] {
                assert!(
                    (child as usize) < node,
                    "child {child} not before parent {node}"
                );
            }
        }
        // The root is the last node.
        let root_children: std::collections::HashSet<u32> =
            compiled.children.iter().copied().collect();
        assert!(!root_children.contains(&(compiled.n_nodes() as u32 - 1)));
    }

    #[test]
    fn node_runs_partition_the_arena_by_kind() {
        let spn = sample_spn(3000, 7);
        let compiled = spn.compile();
        let mut covered = 0usize;
        for run in compiled.node_runs() {
            assert_eq!(run.start as usize, covered, "runs must be contiguous");
            assert!(run.end > run.start, "runs are non-empty");
            for node in run.start as usize..run.end as usize {
                assert_eq!(compiled.kinds[node], run.kind, "run kind mismatch");
            }
            covered = run.end as usize;
        }
        assert_eq!(covered, compiled.n_nodes(), "runs must cover every node");
        // Maximality: adjacent runs differ in kind.
        for w in compiled.node_runs().windows(2) {
            assert_ne!(w[0].kind, w[1].kind, "adjacent runs should be merged");
        }
    }

    /// Per-node scope sets computed independently of the `active_set` mark
    /// recurrence: a leaf's scope is its column, an inner node's the union
    /// of its children's.
    fn scopes(compiled: &CompiledSpn) -> Vec<std::collections::HashSet<usize>> {
        let mut scopes: Vec<std::collections::HashSet<usize>> = Vec::new();
        for node in 0..compiled.n_nodes() {
            let mut s = std::collections::HashSet::new();
            if compiled.kinds[node] == CompiledKind::Leaf {
                s.insert(compiled.leaf_col[compiled.leaf_of[node] as usize] as usize);
            } else {
                let (cs, ce) = compiled.child_range(node);
                for &c in &compiled.children[cs..ce] {
                    s.extend(scopes[c as usize].iter().copied());
                }
            }
            scopes.push(s);
        }
        scopes
    }

    #[test]
    fn active_set_accounting_invariants() {
        let spn = sample_spn(3000, 7);
        let compiled = spn.compile();
        let scopes = scopes(&compiled);
        let n = compiled.n_nodes();
        for cols in [
            vec![],
            vec![0],
            vec![1],
            vec![0, 1],
            vec![1, 1, 5], // repeats and out-of-range ignored
        ] {
            let a = compiled.active_set(&cols);
            let want: Vec<bool> = (0..n)
                .map(|node| cols.iter().any(|c| scopes[node].contains(c)))
                .collect();
            let n_active = want.iter().filter(|&&b| b).count();
            assert_eq!(a.n_active(), n_active, "cols {cols:?}");
            assert!((a.active_fraction() - n_active as f64 / n as f64).abs() < 1e-15);
            // Runs cover exactly the active nodes, same-kind, ascending.
            let mut covered = vec![false; n];
            let mut prev_end = 0u32;
            for run in a.runs() {
                assert!(run.start >= prev_end, "runs must ascend");
                assert!(run.end > run.start);
                prev_end = run.end;
                for node in run.start as usize..run.end as usize {
                    assert_eq!(compiled.kinds[node], run.kind);
                    assert!(want[node], "run covers inactive node {node}");
                    covered[node] = true;
                }
            }
            let swept = covered.iter().filter(|&&b| b).count();
            assert_eq!(swept, n_active, "runs must cover every active node once");
            // Seeds are exactly the inactive children of active parents
            // (plus the root when nothing is active), deduped.
            let mut want_seeds: Vec<u32> = (0..n)
                .filter(|&c| {
                    !want[c]
                        && (0..n).any(|p| {
                            if !want[p] {
                                return false;
                            }
                            let (s, e) = compiled.child_range(p);
                            compiled.children[s..e].contains(&(c as u32))
                        })
                })
                .map(|c| c as u32)
                .collect();
            if n_active == 0 {
                want_seeds.push(n as u32 - 1);
            }
            want_seeds.sort_unstable();
            assert_eq!(a.seeds(), want_seeds.as_slice(), "cols {cols:?}");
            // The root row is always written: either swept or seeded.
            assert!(want[n - 1] || a.seeds().contains(&(n as u32 - 1)));
        }
    }

    #[test]
    fn neutral_table_matches_empty_query_sweep() {
        let spn = sample_spn(3000, 7);
        let compiled = spn.compile();
        let empty = SpnQuery::new(2);
        let root = compiled.n_nodes() - 1;
        assert_eq!(
            compiled.neutral_expect[root].to_bits(),
            compiled.evaluate(&empty).to_bits(),
            "root neutral must be bitwise the empty-query sweep result"
        );
        // Every leaf marginalizes to exactly 1.0 in both semirings.
        for node in 0..compiled.n_nodes() {
            if compiled.kinds[node] == CompiledKind::Leaf {
                assert_eq!(compiled.neutral_expect[node], 1.0);
                assert_eq!(compiled.neutral_mpe[node], 1.0);
            }
        }
    }

    #[test]
    fn compiled_matches_recursive_on_basic_queries() {
        let mut spn = sample_spn(4000, 11);
        let compiled = spn.compile();
        let queries = vec![
            SpnQuery::new(2),
            SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)),
            SpnQuery::new(2)
                .with_pred(0, LeafPred::eq(0.0))
                .with_pred(1, LeafPred::lt(30.0)),
            SpnQuery::new(2).with_func(1, LeafFunc::X),
            SpnQuery::new(2)
                .with_func(1, LeafFunc::X2)
                .with_pred(0, LeafPred::eq(1.0)),
        ];
        for q in &queries {
            let want = spn.evaluate(q);
            let got = compiled.evaluate(q);
            assert!((got - want).abs() < 1e-12, "{got} vs {want} for {q:?}");
        }
    }

    #[test]
    fn compiled_is_a_snapshot_of_compile_time_state() {
        let mut spn = sample_spn(2000, 3);
        let compiled = spn.compile();
        let q = SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0));
        let before = compiled.evaluate(&q);
        // Mutate the tree: the compiled form must not change.
        for _ in 0..500 {
            spn.insert(&[0.0, 70.0]);
        }
        assert_eq!(compiled.evaluate(&q), before);
        // Recompiling picks the updates up.
        let recompiled = spn.compile();
        assert!((recompiled.evaluate(&q) - spn.evaluate(&q)).abs() < 1e-12);
        assert!(recompiled.evaluate(&q) > before);
    }
}
