//! MSPN-style structure learning (paper §3.1; Molina et al., AAAI 2018).
//!
//! Recursive scheme: single-column slices become leaves; slices smaller than
//! the minimum instance slice are naively factorized; otherwise we try a
//! column split (connected components of the pairwise-RDC graph at the given
//! threshold) and fall back to a k-means row split. Sum nodes keep their
//! cluster centroids so tuples can be routed during updates.

use crate::kmeans::kmeans_two;
use crate::leaf::Leaf;
use crate::node::{Node, ProductNode, Spn, SumNode};
use crate::rdc::{pairwise_rdc, RdcParams};
use crate::DataView;

/// Hyper-parameters of SPN learning. Defaults mirror the paper's grid-search
/// winners: RDC threshold 0.3, minimum instance slice 1 % of the input.
#[derive(Debug, Clone)]
pub struct SpnParams {
    /// Independence threshold on pairwise RDC for column splits.
    pub rdc_threshold: f64,
    /// Minimum slice as a fraction of the training rows.
    pub min_instance_ratio: f64,
    /// Rows used per pairwise RDC estimate (stride-sampled).
    pub rdc_sample_rows: usize,
    /// RDC feature map size / regularization.
    pub rdc: RdcParams,
    /// Maximum distinct values before a continuous leaf switches to bins.
    pub max_distinct_exact: usize,
    /// Bin count of binned leaves.
    pub n_bins: usize,
    /// Lloyd iterations for k-means row splits.
    pub kmeans_iters: usize,
    /// Hard recursion depth cap (safety net).
    pub max_depth: usize,
    /// Seed controlling all randomized steps (learning is deterministic).
    pub seed: u64,
}

impl Default for SpnParams {
    fn default() -> Self {
        Self {
            rdc_threshold: 0.3,
            min_instance_ratio: 0.01,
            rdc_sample_rows: 5_000,
            rdc: RdcParams::default(),
            max_distinct_exact: 700,
            n_bins: 64,
            kmeans_iters: 25,
            max_depth: 64,
            seed: 0x00DE_E9DB,
        }
    }
}

struct Ctx<'a> {
    data: DataView<'a>,
    params: &'a SpnParams,
    min_rows: usize,
}

impl Spn {
    /// Learn an SPN from column-major data (NaN = NULL).
    pub fn learn(data: DataView<'_>, params: &SpnParams) -> Spn {
        let n = data.n_rows();
        let rows: Vec<u32> = (0..n as u32).collect();
        let scope: Vec<usize> = (0..data.n_cols()).collect();
        let min_rows = ((params.min_instance_ratio * n as f64).ceil() as usize).max(2);
        let ctx = Ctx {
            data,
            params,
            min_rows,
        };
        let root = build(&ctx, &rows, &scope, params.seed, 0);
        Spn::new(root, data.meta.to_vec(), n as u64)
    }
}

fn leaf(ctx: &Ctx<'_>, rows: &[u32], col: usize) -> Node {
    Node::Leaf(Leaf::build(
        &ctx.data,
        rows,
        col,
        ctx.params.max_distinct_exact,
        ctx.params.n_bins,
    ))
}

/// Product of independent leaves — the terminal factorization.
fn naive_factorization(ctx: &Ctx<'_>, rows: &[u32], scope: &[usize]) -> Node {
    if scope.len() == 1 {
        return leaf(ctx, rows, scope[0]);
    }
    Node::Product(ProductNode {
        scope: scope.to_vec(),
        children: scope.iter().map(|&c| leaf(ctx, rows, c)).collect(),
    })
}

fn build(ctx: &Ctx<'_>, rows: &[u32], scope: &[usize], seed: u64, depth: usize) -> Node {
    if scope.len() == 1 {
        return leaf(ctx, rows, scope[0]);
    }
    if rows.len() < ctx.min_rows || depth >= ctx.params.max_depth {
        return naive_factorization(ctx, rows, scope);
    }

    // Column split: connected components of the RDC graph.
    if let Some(components) = independent_components(ctx, rows, scope) {
        let children: Vec<Node> = components
            .iter()
            .enumerate()
            .map(|(i, comp)| {
                build(
                    ctx,
                    rows,
                    comp,
                    seed.wrapping_add(0x9e37 + i as u64),
                    depth + 1,
                )
            })
            .collect();
        return Node::Product(ProductNode {
            scope: scope.to_vec(),
            children,
        });
    }

    // Row split via k-means.
    match kmeans_two(
        &ctx.data,
        rows,
        scope,
        seed ^ 0xC1C1,
        ctx.params.kmeans_iters,
    ) {
        Some(km) => {
            let counts = vec![km.clusters[0].len() as u64, km.clusters[1].len() as u64];
            let children = vec![
                build(
                    ctx,
                    &km.clusters[0],
                    scope,
                    seed.wrapping_mul(31).wrapping_add(1),
                    depth + 1,
                ),
                build(
                    ctx,
                    &km.clusters[1],
                    scope,
                    seed.wrapping_mul(31).wrapping_add(2),
                    depth + 1,
                ),
            ];
            Node::Sum(SumNode {
                scope: scope.to_vec(),
                children,
                counts,
                centroids: km.centroids.to_vec(),
                norm: km.norm,
            })
        }
        // Cannot split rows (identical points): independence is as good as it
        // gets — factorize.
        None => naive_factorization(ctx, rows, scope),
    }
}

/// Split `scope` into groups that are pairwise-independent at the RDC
/// threshold. `None` if everything is connected (no split possible).
#[allow(clippy::ptr_arg, clippy::needless_range_loop)]
fn independent_components(ctx: &Ctx<'_>, rows: &[u32], scope: &[usize]) -> Option<Vec<Vec<usize>>> {
    let cols: Vec<&[f64]> = scope.iter().map(|&c| ctx.data.cols[c].as_slice()).collect();
    let m = pairwise_rdc(&cols, rows, ctx.params.rdc_sample_rows, &ctx.params.rdc);
    let d = scope.len();

    // Union-find over scope positions.
    let mut parent: Vec<usize> = (0..d).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for i in 0..d {
        for j in (i + 1)..d {
            if m[i][j] >= ctx.params.rdc_threshold {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }

    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..d {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(scope[i]);
    }
    if groups.len() <= 1 {
        return None;
    }
    let mut comps: Vec<Vec<usize>> = groups.into_values().collect();
    comps.sort_by_key(|c| c[0]); // deterministic order
    Some(comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, LeafFunc, LeafPred, SpnQuery};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    /// Paper Figure 3: region/age with two clusters — old Europeans and young
    /// Asians.
    fn figure3_data(n: usize) -> (Vec<Vec<f64>>, Vec<ColumnMeta>) {
        let mut rng = lcg(42);
        let mut region = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        for _ in 0..n {
            if rng() < 0.3 {
                region.push(0.0); // EUROPE
                age.push(60.0 + (rng() * 40.0).floor());
            } else {
                region.push(1.0); // ASIA
                age.push(20.0 + (rng() * 30.0).floor());
            }
        }
        (
            vec![region, age],
            vec![ColumnMeta::discrete("region"), ColumnMeta::discrete("age")],
        )
    }

    #[test]
    fn learned_spn_recovers_joint_probabilities() {
        let (cols, meta) = figure3_data(8000);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        // P(region = EUROPE) ≈ 0.3.
        let q = SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0));
        let p = spn.probability(&q);
        assert!((p - 0.3).abs() < 0.03, "P(EU) = {p}");
        // P(EU ∧ age < 30) is near zero (Europeans are 60+).
        let q = SpnQuery::new(2)
            .with_pred(0, LeafPred::eq(0.0))
            .with_pred(1, LeafPred::lt(30.0));
        let p = spn.probability(&q);
        assert!(p < 0.02, "P(EU ∧ young) = {p}");
        // P(ASIA ∧ age < 30) ≈ 0.7 · (1/3).
        let q = SpnQuery::new(2)
            .with_pred(0, LeafPred::eq(1.0))
            .with_pred(1, LeafPred::lt(30.0));
        let p = spn.probability(&q);
        assert!((p - 0.7 / 3.0).abs() < 0.05, "P(ASIA ∧ young) = {p}");
    }

    #[test]
    fn conditional_expectation_matches_ground_truth() {
        let (cols, meta) = figure3_data(8000);
        // Ground truth E[age | EU].
        let (mut s, mut k) = (0.0, 0u64);
        #[allow(clippy::needless_range_loop)]
        for i in 0..cols[0].len() {
            if cols[0][i] == 0.0 {
                s += cols[1][i];
                k += 1;
            }
        }
        let truth = s / k as f64;
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let num = spn.evaluate(
            &SpnQuery::new(2)
                .with_func(1, LeafFunc::X)
                .with_pred(0, LeafPred::eq(0.0)),
        );
        let den = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)));
        let cond = num / den;
        assert!((cond - truth).abs() < 2.0, "E[age|EU] = {cond} vs {truth}");
    }

    #[test]
    fn independent_columns_become_product() {
        let mut rng = lcg(7);
        let n = 4000;
        let a: Vec<f64> = (0..n).map(|_| (rng() * 5.0).floor()).collect();
        let b: Vec<f64> = (0..n).map(|_| (rng() * 5.0).floor()).collect();
        let cols = vec![a, b];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        assert!(
            matches!(spn.root, Node::Product(_)),
            "independent columns should split at the root"
        );
    }

    #[test]
    fn marginalization_is_consistent() {
        // P(A=a) computed directly vs Σ_b P(A=a, B=b).
        let (cols, meta) = figure3_data(5000);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let direct = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(1.0)));
        let mut summed = 0.0;
        for age in 0..=110 {
            summed += spn.probability(
                &SpnQuery::new(2)
                    .with_pred(0, LeafPred::eq(1.0))
                    .with_pred(1, LeafPred::eq(age as f64)),
            );
        }
        assert!((direct - summed).abs() < 1e-9, "{direct} vs {summed}");
    }

    #[test]
    fn total_probability_is_one() {
        let (cols, meta) = figure3_data(3000);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let p = spn.probability(&SpnQuery::new(2));
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learning_is_deterministic() {
        let (cols, meta) = figure3_data(2000);
        let data = DataView::new(&cols, &meta);
        let params = SpnParams::default();
        let mut a = Spn::learn(data, &params);
        let mut b = Spn::learn(data, &params);
        assert_eq!(a.size(), b.size());
        let q = SpnQuery::new(2).with_pred(1, LeafPred::ge(50.0));
        assert_eq!(a.probability(&q), b.probability(&q));
    }

    #[test]
    fn tiny_input_learns_without_panicking() {
        let cols = vec![vec![1.0], vec![2.0]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        assert_eq!(spn.n_rows(), 1);
        let p = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(1.0)));
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mpe_recovers_cluster_structure() {
        let (cols, meta) = figure3_data(5000);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        // Production MPE runs on the compiled max-product path; the
        // recursive walk is kept as the oracle and must agree.
        let compiled = spn.compile();
        // Given an old customer, the most probable region is EUROPE (0).
        let q = SpnQuery::new(2).with_pred(1, LeafPred::ge(70.0));
        assert_eq!(compiled.most_probable_value(0, &q), Some(0.0));
        assert_eq!(spn.most_probable_value(0, &q), Some(0.0));
        // Given a young customer, ASIA (1).
        let q = SpnQuery::new(2).with_pred(1, LeafPred::le(25.0));
        assert_eq!(compiled.most_probable_value(0, &q), Some(1.0));
        assert_eq!(spn.most_probable_value(0, &q), Some(1.0));
    }
}
