//! Sum-Product Networks for DeepDB.
//!
//! A from-scratch MSPN-style stack (paper §3.1–§3.2):
//!
//! * [`rdc`] — the Randomized Dependence Coefficient used both as the
//!   column-split criterion during learning and as the table-correlation
//!   measure for ensemble construction;
//! * [`kmeans_two`] — row clustering for sum nodes (centroids are retained so
//!   the update algorithm can route new tuples);
//! * [`Leaf`] — value-frequency histograms with a NULL slot and a binning
//!   fallback for high-cardinality continuous columns;
//! * [`Spn`] — structure learning, bottom-up inference of
//!   `E[∏ g_c(X_c) · 1_C]` expectations, max-product MPE, and direct
//!   insert/delete updates (paper Algorithm 1). Deletes are
//!   check-then-apply: an update the routed path cannot absorb is a
//!   consistent no-op, never a partial decrement;
//! * [`CompiledSpn`] / [`BatchEvaluator`] — the tree flattened into an
//!   arena (contiguous SoA arrays in bottom-up topological order) and
//!   evaluated for whole batches of queries in one non-recursive sweep.
//!   The recursive evaluator survives **only as the differential-test
//!   oracle**; every production query path — expectations *and*
//!   max-product MPE — runs on the compiled engine. Updates **patch the
//!   arena in place** ([`Spn::insert_patch`] / [`Spn::insert_batch`] and
//!   the delete twins): tree and arena are walked in lockstep, sum-edge
//!   counts and leaf histograms are edited directly, and per-node
//!   finalization (weight renormalization, prefix rebuilds, cached leaf
//!   modes) is folded to once per touched node per batch — O(depth +
//!   touched bins) per tuple and bitwise identical to a full recompile;
//! * [`MaxProductEvaluator`] — the compiled **max-product** pass
//!   (classification / most-probable-explanation, paper §4.3): sum nodes
//!   take the best weighted child instead of the average, each probe tracks
//!   the target-column leaf on its winning branch, and the answer resolves
//!   against the arena's O(1) cached leaf modes. Tie-breaking is
//!   deterministic (lowest child index wins) and shared with the recursive
//!   oracle, so both agree bitwise;
//! * `kernel` (internal) — both evaluators run one shared sweep skeleton
//!   parameterized by per-node-run semiring kernels
//!   (`LeafKernel`/`SumKernel`/`ProductKernel` for (+, ×) and (max, ×)):
//!   consecutive same-kind arena nodes are dispatched as one kernel call,
//!   and the inner kernels process four query lanes at a time with
//!   explicit-lane (`f64x4`-style) arithmetic that is **bitwise identical**
//!   to the scalar reference path (`evaluate_scalar`) — no FMA contraction,
//!   no reassociation, zero-skips as lanewise freezes;
//! * [`sweep_models`] / [`WorkerPool`] — one fused sweep per compiled model
//!   with the tiles of all models (expectation **and** MPE probes alike)
//!   load-balanced across a **persistent worker pool**: workers keep pinned
//!   evaluator scratch for their lifetime, claim tiles off an atomic
//!   cursor, and park between jobs; the execution engine of `deepdb-core`'s
//!   probe plans. Evaluation is `&self`-safe, and results are bitwise
//!   identical for every thread count and kernel flavor;
//! * [`ActiveSet`] — query-scoped sub-DAG pruning: the arena caches each
//!   node's query-independent (empty-query) value per semiring, and a sweep
//!   restricted to the nodes whose scope intersects the constrained/target
//!   columns seeds the pruned boundary from those neutral tables — bitwise
//!   identical to the full sweep by construction, at a fraction of the node
//!   visits for selective queries.
//!
//! The SPN operates on an opaque `f64` matrix (NaN = NULL); the relational
//! interpretation (tables, tuple factors, join indicators) lives in
//! `deepdb-core`.

mod arena;
mod batch;
mod data;
mod infer;
mod kernel;
mod kmeans;
mod leaf;
mod learn;
pub(crate) mod maxprod;
mod node;
pub mod pool;
pub mod rdc;
mod serialize;
mod update;
pub mod wire;

pub use arena::{ActiveSet, CompiledSpn};
pub use batch::{BatchEvaluator, SWEEP_TILE};
pub use data::{ColumnMeta, DataView};
pub use infer::{LeafFunc, LeafPred, Slot, SpnQuery};
pub use kmeans::{kmeans_two, KMeansResult};
pub use leaf::Leaf;
pub use learn::SpnParams;
pub use maxprod::{MaxProductEvaluator, MpeOutcome, MpeProbe};
pub use node::{Node, ProductNode, Spn, SumNode};
pub use pool::{
    default_threads, sweep_models, CancelFlag, InlineSweep, SweepJob, TileFault, TileFaultFn,
    WorkerPool,
};
