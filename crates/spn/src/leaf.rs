//! Leaf distributions: exact value-frequency histograms with a NULL slot and
//! an equi-width binning fallback for high-cardinality continuous columns
//! (paper §3.2 — "we store each individual value and its frequency; if the
//! number of distinct values exceeds a given limit, we also use binning").

use crate::infer::{LeafFunc, LeafPred};

/// A univariate leaf over one training column.
#[derive(Debug, Clone)]
pub struct Leaf {
    /// Global column id this leaf models.
    pub col: usize,
    discrete: bool,
    null_count: u64,
    total: u64,
    kind: LeafKind,
    max_distinct_exact: usize,
    n_bins: usize,
    /// Prefix sums are rebuilt lazily after updates.
    dirty: bool,
}

#[derive(Debug, Clone)]
enum LeafKind {
    /// Sorted distinct values with counts and g-weighted prefix sums.
    Exact {
        values: Vec<f64>,
        counts: Vec<u64>,
        // prefix[i] = Σ_{j<i} g(values[j])·counts[j], one array per LeafFunc.
        cum: [Vec<f64>; 5],
    },
    /// Equi-width bins with per-bin moments and a distinct-value estimate.
    Binned {
        lo: f64,
        width: f64,
        counts: Vec<u64>,
        sums: Vec<f64>,
        sq_sums: Vec<f64>,
        distincts: Vec<u64>,
    },
}

fn apply(func: LeafFunc, v: f64) -> f64 {
    match func {
        LeafFunc::One => 1.0,
        LeafFunc::X => v,
        LeafFunc::X2 => v * v,
        LeafFunc::InvClamp1 => 1.0 / v.max(1.0),
        LeafFunc::InvSqClamp1 => {
            let c = v.max(1.0);
            1.0 / (c * c)
        }
    }
}

const FUNCS: [LeafFunc; 5] = [
    LeafFunc::One,
    LeafFunc::X,
    LeafFunc::X2,
    LeafFunc::InvClamp1,
    LeafFunc::InvSqClamp1,
];

/// Bin of `v` in an equi-width binned leaf; out-of-range values clamp to the
/// edge bins. `insert`, `can_remove`, and `remove` must agree on this
/// bit-for-bit — the check-then-apply delete protocol validates against the
/// same bin it later drains.
fn bin_index(lo: f64, width: f64, nb: usize, v: f64) -> usize {
    (((v - lo) / width) as isize).clamp(0, nb as isize - 1) as usize
}

/// Shape class of a normalized predicate, computed once per slot so the
/// per-leaf hot path ([`Leaf::expect_norm`]) can dispatch straight to a
/// single histogram lookup for the two dominant query shapes (equality
/// points and pure ranges) instead of walking the general machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PredClass {
    /// Exactly one finite equality value, no range/not-in constraints:
    /// one binary search answers it.
    Point,
    /// Pure range (possibly unbounded), no value sets: two partition
    /// points and a prefix-sum difference answer it.
    Range,
    /// Everything else takes the general path.
    General,
}

/// Conjunction of leaf predicates normalized to one range + value sets.
/// Built once per (query, column) by the batch evaluator and reused across
/// every leaf with that column — the recursive evaluator rebuilds it per
/// leaf visit.
#[derive(Debug, Clone)]
pub(crate) struct NormPred {
    lo: f64,
    hi: f64,
    lo_strict: bool,
    hi_strict: bool,
    in_set: Option<Vec<f64>>,
    not_in: Vec<f64>,
    want_null: bool,
    want_not_null: bool,
    /// Spare buffer so [`NormPred::assign`] can drop an `In` set without
    /// losing its allocation for the next reuse of this slot.
    in_spare: Vec<f64>,
    class: PredClass,
}

impl NormPred {
    pub(crate) fn new(preds: &[LeafPred]) -> Self {
        let mut np = NormPred {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_strict: false,
            hi_strict: false,
            in_set: None,
            not_in: Vec::new(),
            want_null: false,
            want_not_null: false,
            in_spare: Vec::new(),
            class: PredClass::General,
        };
        np.assign(preds);
        np
    }

    /// Re-normalize `preds` into this slot in place, reusing every buffer —
    /// the steady-state path of a reused
    /// [`crate::kernel::LeafValueTable`] allocates nothing here.
    pub(crate) fn assign(&mut self, preds: &[LeafPred]) {
        self.lo = f64::NEG_INFINITY;
        self.hi = f64::INFINITY;
        self.lo_strict = false;
        self.hi_strict = false;
        if let Some(mut set) = self.in_set.take() {
            set.clear();
            self.in_spare = set;
        }
        self.not_in.clear();
        self.want_null = false;
        self.want_not_null = false;
        for p in preds {
            match p {
                LeafPred::Range {
                    lo,
                    hi,
                    lo_incl,
                    hi_incl,
                } => {
                    if *lo > self.lo || (*lo == self.lo && !lo_incl) {
                        self.lo = *lo;
                        self.lo_strict = !lo_incl;
                    }
                    if *hi < self.hi || (*hi == self.hi && !hi_incl) {
                        self.hi = *hi;
                        self.hi_strict = !hi_incl;
                    }
                }
                LeafPred::In(vs) => match &mut self.in_set {
                    None => {
                        let mut buf = std::mem::take(&mut self.in_spare);
                        buf.clear();
                        buf.extend_from_slice(vs);
                        buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                        buf.dedup();
                        self.in_set = Some(buf);
                    }
                    // Intersection: membership is set-based, so checking
                    // against the raw (unsorted) new list keeps results
                    // identical to sorting it first.
                    Some(prev) => prev.retain(|v| vs.contains(v)),
                },
                LeafPred::NotIn(vs) => self.not_in.extend_from_slice(vs),
                LeafPred::IsNull => self.want_null = true,
                LeafPred::IsNotNull => self.want_not_null = true,
            }
        }
        // NaN equality values must stay on the general path: its
        // `value_passes` filter rejects them before the binary search (whose
        // total-order fallback could otherwise spuriously match).
        self.class = if self.want_null || !self.not_in.is_empty() {
            PredClass::General
        } else {
            match &self.in_set {
                None => PredClass::Range,
                Some(s)
                    if s.len() == 1
                        && s[0].is_finite()
                        && self.lo == f64::NEG_INFINITY
                        && self.hi == f64::INFINITY =>
                {
                    PredClass::Point
                }
                Some(_) => PredClass::General,
            }
        };
    }

    /// Structural equality by float *bits* (NaN-safe, `±0.0`-distinguishing).
    /// Used by the sweep kernels to dedup identical per-(query, column)
    /// slots: bits-equal predicates make [`Leaf::expect_norm`] return
    /// bits-equal values, so one evaluation can serve every query sharing
    /// the slot. A false negative only costs a redundant evaluation.
    pub(crate) fn bits_eq(&self, other: &NormPred) -> bool {
        fn vec_bits_eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.lo_strict == other.lo_strict
            && self.hi_strict == other.hi_strict
            && self.want_null == other.want_null
            && self.want_not_null == other.want_not_null
            && vec_bits_eq(&self.not_in, &other.not_in)
            && match (&self.in_set, &other.in_set) {
                (None, None) => true,
                (Some(a), Some(b)) => vec_bits_eq(a, b),
                _ => false,
            }
    }

    fn value_passes(&self, v: f64) -> bool {
        if v < self.lo || (v == self.lo && self.lo_strict) {
            return false;
        }
        if v > self.hi || (v == self.hi && self.hi_strict) {
            return false;
        }
        if let Some(set) = &self.in_set {
            if !set.contains(&v) {
                return false;
            }
        }
        !self.not_in.contains(&v)
    }
}

/// Reusable scratch for [`Leaf::expect_norm_batch`], owned by the caller
/// (one per [`crate::kernel::LeafValueTable`]) so steady-state table
/// rebuilds allocate nothing once the buffers have grown.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeafBatchScratch {
    /// `(boundary, inclusive, slot-tag)` probes: `inclusive = false`
    /// resolves `partition_point(v < x)`, `true` resolves
    /// `partition_point(v <= x)`.
    bounds: Vec<(f64, bool, u32)>,
    /// Resolved partition index per slot tag (two tags per slot: `2j` for
    /// the start/lt boundary, `2j + 1` for the end/le boundary).
    parts: Vec<u32>,
    /// Per-slot dispatch decided during the counting pass.
    plans: Vec<u8>,
}

/// [`LeafBatchScratch::plans`] codes.
const PLAN_FALLBACK: u8 = 0;
const PLAN_NONE: u8 = 1;
const PLAN_POINT: u8 = 2;
const PLAN_RANGE: u8 = 3;

impl Leaf {
    /// Build a leaf over `col` from the given row slice.
    pub fn build(
        data: &crate::DataView<'_>,
        rows: &[u32],
        col: usize,
        max_distinct_exact: usize,
        n_bins: usize,
    ) -> Self {
        let discrete = data.meta[col].discrete;
        let mut vals: Vec<f64> = Vec::with_capacity(rows.len());
        let mut null_count = 0u64;
        for &r in rows {
            let v = data.value(r, col);
            if v.is_finite() {
                vals.push(v);
            } else {
                null_count += 1;
            }
        }
        let total = rows.len() as u64;
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        // Distinct run-length encoding.
        let mut values = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for &v in &vals {
            match values.last() {
                Some(&last) if last == v => *counts.last_mut().unwrap() += 1,
                _ => {
                    values.push(v);
                    counts.push(1);
                }
            }
        }

        let kind = if discrete || values.len() <= max_distinct_exact || values.len() < 2 {
            LeafKind::Exact {
                values,
                counts,
                cum: Default::default(),
            }
        } else {
            let lo = values[0];
            let hi = *values.last().unwrap();
            let width = ((hi - lo) / n_bins as f64).max(1e-12);
            let mut b = LeafKind::Binned {
                lo,
                width,
                counts: vec![0; n_bins],
                sums: vec![0.0; n_bins],
                sq_sums: vec![0.0; n_bins],
                distincts: vec![0; n_bins],
            };
            if let LeafKind::Binned {
                counts: bc,
                sums,
                sq_sums,
                distincts,
                ..
            } = &mut b
            {
                for (v, c) in values.iter().zip(&counts) {
                    let idx = (((v - lo) / width) as usize).min(n_bins - 1);
                    bc[idx] += c;
                    sums[idx] += v * *c as f64;
                    sq_sums[idx] += v * v * *c as f64;
                    distincts[idx] += 1;
                }
            }
            b
        };

        let mut leaf = Leaf {
            col,
            discrete,
            null_count,
            total,
            kind,
            max_distinct_exact,
            n_bins,
            dirty: true,
        };
        leaf.rebuild_prefix();
        leaf
    }

    /// The leaf's scope as a slice (always exactly one column), borrowed
    /// from `col` so [`crate::Node::scope`] never allocates.
    pub fn scope(&self) -> &[usize] {
        std::slice::from_ref(&self.col)
    }

    /// Rows this leaf was built from / currently represents.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of NULL observations.
    pub fn null_count(&self) -> u64 {
        self.null_count
    }

    fn rebuild_prefix(&mut self) {
        if let LeafKind::Exact {
            values,
            counts,
            cum,
        } = &mut self.kind
        {
            for (fi, func) in FUNCS.iter().enumerate() {
                let mut acc = 0.0;
                let arr = &mut cum[fi];
                arr.clear();
                arr.reserve(values.len() + 1);
                arr.push(0.0);
                for (v, c) in values.iter().zip(counts.iter()) {
                    acc += apply(*func, *v) * *c as f64;
                    arr.push(acc);
                }
            }
        }
        self.dirty = false;
    }

    /// `E[g(X) · 1_pred(X)]` under this leaf's empirical distribution
    /// (normalized by the total row count including NULLs). NULL rows only
    /// contribute to `IsNull` queries with `g = One`.
    pub fn expect(&mut self, func: LeafFunc, preds: &[LeafPred]) -> f64 {
        self.ensure_prefix();
        self.expect_norm(func, &NormPred::new(preds))
    }

    /// Rebuild the g-weighted prefix sums if updates invalidated them.
    pub(crate) fn ensure_prefix(&mut self) {
        if self.dirty {
            self.rebuild_prefix();
        }
    }

    /// Immutable expectation against a pre-normalized predicate. Requires the
    /// prefix sums to be current (see [`Leaf::ensure_prefix`]); this is the
    /// hot path of both the recursive and the compiled evaluator.
    pub(crate) fn expect_norm(&self, func: LeafFunc, np: &NormPred) -> f64 {
        debug_assert!(!self.dirty, "expect_norm on a dirty leaf");
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        if np.want_null {
            // NULL fails every other constraint.
            let constrained = np.lo != f64::NEG_INFINITY
                || np.hi != f64::INFINITY
                || np.in_set.is_some()
                || np.want_not_null;
            if constrained {
                return 0.0;
            }
            return if matches!(func, LeafFunc::One) {
                self.null_count as f64 / total
            } else {
                0.0
            };
        }

        match &self.kind {
            LeafKind::Exact {
                values,
                counts,
                cum,
            } => {
                let fi = FUNCS.iter().position(|f| *f == func).unwrap();
                match np.class {
                    // Equality point: one binary search, no per-value
                    // filtering. The `0.0 +` mirrors the general
                    // accumulator's first addition so a `-0.0` contribution
                    // stays bitwise identical.
                    PredClass::Point => {
                        let v = np.in_set.as_deref().expect("point class has a set")[0];
                        let mut acc = 0.0;
                        if let Ok(i) = values.binary_search_by(|a| {
                            a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal)
                        }) {
                            acc += apply(func, v) * counts[i] as f64;
                        }
                        return acc / total;
                    }
                    // Pure range: prefix-sum difference with no NotIn
                    // subtraction pass (it would iterate an empty set).
                    PredClass::Range => {
                        let start = if np.lo == f64::NEG_INFINITY {
                            0
                        } else if np.lo_strict {
                            values.partition_point(|&v| v <= np.lo)
                        } else {
                            values.partition_point(|&v| v < np.lo)
                        };
                        let end = if np.hi == f64::INFINITY {
                            values.len()
                        } else if np.hi_strict {
                            values.partition_point(|&v| v < np.hi)
                        } else {
                            values.partition_point(|&v| v <= np.hi)
                        };
                        if start >= end {
                            return 0.0;
                        }
                        return (cum[fi][end] - cum[fi][start]) / total;
                    }
                    PredClass::General => {}
                }
                if let Some(set) = &np.in_set {
                    let mut acc = 0.0;
                    for &v in set {
                        if !np.value_passes(v) {
                            continue;
                        }
                        if let Ok(i) = values.binary_search_by(|a| {
                            a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal)
                        }) {
                            acc += apply(func, v) * counts[i] as f64;
                        }
                    }
                    return acc / total;
                }
                // Range via prefix sums, then subtract NotIn members.
                let start = if np.lo == f64::NEG_INFINITY {
                    0
                } else if np.lo_strict {
                    values.partition_point(|&v| v <= np.lo)
                } else {
                    values.partition_point(|&v| v < np.lo)
                };
                let end = if np.hi == f64::INFINITY {
                    values.len()
                } else if np.hi_strict {
                    values.partition_point(|&v| v < np.hi)
                } else {
                    values.partition_point(|&v| v <= np.hi)
                };
                if start >= end {
                    return 0.0;
                }
                let mut acc = cum[fi][end] - cum[fi][start];
                for &v in &np.not_in {
                    if v < np.lo || v > np.hi {
                        continue;
                    }
                    if let Ok(i) = values.binary_search_by(|a| {
                        a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal)
                    }) {
                        if i >= start && i < end {
                            acc -= apply(func, v) * counts[i] as f64;
                        }
                    }
                }
                acc / total
            }
            LeafKind::Binned {
                lo,
                width,
                counts,
                sums,
                sq_sums,
                distincts,
            } => {
                let nb = counts.len();
                if let Some(set) = &np.in_set {
                    // Point queries on a binned leaf: approximate P(X = v) by
                    // the bin mass spread uniformly over its distinct values.
                    let mut acc = 0.0;
                    for &v in set {
                        if !np.value_passes(v) {
                            continue;
                        }
                        let idx = ((v - lo) / width) as isize;
                        if idx < 0 || idx as usize >= nb {
                            continue;
                        }
                        let idx = idx as usize;
                        if counts[idx] == 0 {
                            continue;
                        }
                        let share = counts[idx] as f64 / distincts[idx].max(1) as f64;
                        acc += apply(func, v) * share;
                    }
                    return acc / total;
                }
                // Range query: full bins use exact moments, edge bins are
                // scaled by the covered fraction (uniform-within-bin).
                let mut acc = 0.0;
                for b in 0..nb {
                    if counts[b] == 0 {
                        continue;
                    }
                    let b_lo = lo + b as f64 * width;
                    let b_hi = b_lo + width;
                    let ov_lo = np.lo.max(b_lo);
                    let ov_hi = np.hi.min(b_hi);
                    if ov_hi <= ov_lo {
                        continue;
                    }
                    let frac = ((ov_hi - ov_lo) / width).clamp(0.0, 1.0);
                    let contrib = match func {
                        LeafFunc::One => counts[b] as f64,
                        LeafFunc::X => sums[b],
                        LeafFunc::X2 => sq_sums[b],
                        LeafFunc::InvClamp1 | LeafFunc::InvSqClamp1 => {
                            // Factors are discrete and never binned; fall back
                            // to applying g at the bin mean.
                            let mean = sums[b] / counts[b] as f64;
                            apply(func, mean) * counts[b] as f64
                        }
                    };
                    let mut c = contrib * frac;
                    for &v in &np.not_in {
                        if v >= ov_lo && v < ov_hi {
                            let share = counts[b] as f64 / distincts[b].max(1) as f64;
                            c -= apply(func, v) * share;
                        }
                    }
                    acc += c;
                }
                acc / total
            }
        }
    }

    /// Batched twin of [`Leaf::expect_norm`] over the distinct slots of this
    /// leaf's column: every Point/Range partition boundary across the whole
    /// fan is sorted once and resolved in **one monotone merge walk** over
    /// the sorted histogram, so one walk answers all of the column's slots
    /// instead of one binary search per boundary. Returns `false` (nothing
    /// written to `out`) when the walk cannot pay for itself — binned or
    /// empty histograms, or a fan too small relative to the histogram — and
    /// the caller evaluates per slot.
    ///
    /// **Bitwise contract**: partition indices are integers (a merge walk
    /// and a binary search find the same index), and each slot's final
    /// arithmetic mirrors `expect_norm` op for op, so a `true` return pushes
    /// exactly the bits per-slot evaluation would. `None` (marginalized)
    /// slots resolve to the multiplicative identity `1.0`, matching the
    /// [`crate::kernel::LeafValueTable`] contract; General-class slots and
    /// NaN range bounds fall back to `expect_norm` individually.
    pub(crate) fn expect_norm_batch<'a>(
        &self,
        slots: impl Iterator<Item = Option<&'a (LeafFunc, NormPred)>> + Clone,
        scratch: &mut LeafBatchScratch,
        out: &mut Vec<f64>,
    ) -> bool {
        debug_assert!(!self.dirty, "expect_norm_batch on a dirty leaf");
        let LeafKind::Exact {
            values,
            counts,
            cum,
        } = &self.kind
        else {
            return false;
        };
        let n = values.len();
        if self.total == 0 || n == 0 {
            return false;
        }

        // Counting pass: how many boundary probes would the walk resolve?
        scratch.plans.clear();
        let mut n_bounds = 0usize;
        for slot in slots.clone() {
            let plan = match slot {
                None => PLAN_NONE,
                Some((_, np)) => match np.class {
                    PredClass::General => PLAN_FALLBACK,
                    PredClass::Point => {
                        n_bounds += 2;
                        PLAN_POINT
                    }
                    // NaN bounds break the sort order; leave them to the
                    // per-slot path, which already defines their result.
                    PredClass::Range if np.lo.is_nan() || np.hi.is_nan() => PLAN_FALLBACK,
                    PredClass::Range => {
                        n_bounds += usize::from(np.lo != f64::NEG_INFINITY)
                            + usize::from(np.hi != f64::INFINITY);
                        PLAN_RANGE
                    }
                },
            };
            scratch.plans.push(plan);
        }
        // Worth it only when one O(n + L log L) walk undercuts L binary
        // searches of O(log n) each.
        if n_bounds < 2 || n_bounds * (n.ilog2() as usize + 1) < n {
            return false;
        }

        // Emit and sort the boundaries: ascending by value, `v < x` before
        // `v <= x` at equal values (the lt partition never exceeds the le
        // one), compared with `partial_cmp` so `-0.0`/`0.0` stay
        // interchangeable exactly as `partition_point`'s `<`/`<=` see them.
        scratch.bounds.clear();
        scratch.parts.clear();
        scratch.parts.resize(2 * scratch.plans.len(), 0);
        for (j, slot) in slots.clone().enumerate() {
            let tag = (2 * j) as u32;
            match (scratch.plans[j], slot) {
                (PLAN_POINT, Some((_, np))) => {
                    let v = np.in_set.as_deref().expect("point class has a set")[0];
                    scratch.bounds.push((v, false, tag));
                    scratch.bounds.push((v, true, tag + 1));
                }
                (PLAN_RANGE, Some((_, np))) => {
                    if np.lo != f64::NEG_INFINITY {
                        scratch.bounds.push((np.lo, np.lo_strict, tag));
                    }
                    if np.hi != f64::INFINITY {
                        scratch.bounds.push((np.hi, !np.hi_strict, tag + 1));
                    }
                }
                _ => {}
            }
        }
        scratch.bounds.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        // The walk: partition targets are non-decreasing along the sorted
        // boundary list, so one cursor over `values` resolves them all.
        let mut vi = 0usize;
        for &(x, le, tag) in &scratch.bounds {
            while vi < n && (values[vi] < x || (le && values[vi] == x)) {
                vi += 1;
            }
            scratch.parts[tag as usize] = vi as u32;
        }

        let total = self.total as f64;
        for (j, slot) in slots.enumerate() {
            let val = match (scratch.plans[j], slot) {
                (PLAN_NONE, _) => 1.0,
                (PLAN_FALLBACK, Some((func, np))) => self.expect_norm(*func, np),
                (PLAN_POINT, Some((func, np))) => {
                    // `lt` is where the point value sits if present; present
                    // iff the le partition clears it.
                    let v = np.in_set.as_deref().expect("point class has a set")[0];
                    let lt = scratch.parts[2 * j] as usize;
                    let le = scratch.parts[2 * j + 1] as usize;
                    let mut acc = 0.0;
                    if le > lt {
                        acc += apply(*func, v) * counts[lt] as f64;
                    }
                    acc / total
                }
                (PLAN_RANGE, Some((func, np))) => {
                    let fi = FUNCS.iter().position(|f| f == func).unwrap();
                    let start = if np.lo == f64::NEG_INFINITY {
                        0
                    } else {
                        scratch.parts[2 * j] as usize
                    };
                    let end = if np.hi == f64::INFINITY {
                        n
                    } else {
                        scratch.parts[2 * j + 1] as usize
                    };
                    if start >= end {
                        0.0
                    } else {
                        (cum[fi][end] - cum[fi][start]) / total
                    }
                }
                _ => unreachable!("plan implies a Some slot"),
            };
            out.push(val);
        }
        true
    }

    /// Most frequent value (MPE at the leaf level); `None` when empty. Ties
    /// break toward the **lowest value index** (i.e. the smallest value /
    /// lowest bin), mirroring the lowest-child-wins rule of the max-product
    /// sum nodes so MPE answers are deterministic end to end. Both the
    /// recursive oracle and the arena's cached mode table go through this
    /// one function.
    pub fn mode(&self) -> Option<f64> {
        fn argmax_first(counts: &[u64]) -> Option<usize> {
            let mut best: Option<(usize, u64)> = None;
            for (i, &c) in counts.iter().enumerate() {
                if c > 0 && best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((i, c));
                }
            }
            best.map(|(i, _)| i)
        }
        match &self.kind {
            LeafKind::Exact { values, counts, .. } => argmax_first(counts).map(|i| values[i]),
            LeafKind::Binned { counts, sums, .. } => {
                argmax_first(counts).map(|i| sums[i] / counts[i] as f64)
            }
        }
    }

    /// Insert one observation (NaN = NULL). May convert an overflowing exact
    /// continuous leaf to a binned one.
    pub fn insert(&mut self, v: f64) {
        self.total += 1;
        self.dirty = true;
        if !v.is_finite() {
            self.null_count += 1;
            return;
        }
        let needs_bin_conversion = match &mut self.kind {
            LeafKind::Exact { values, counts, .. } => {
                match values
                    .binary_search_by(|a| a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal))
                {
                    Ok(i) => {
                        counts[i] += 1;
                        false
                    }
                    Err(i) => {
                        values.insert(i, v);
                        counts.insert(i, 1);
                        !self.discrete && values.len() > self.max_distinct_exact
                    }
                }
            }
            LeafKind::Binned {
                lo,
                width,
                counts,
                sums,
                sq_sums,
                ..
            } => {
                let idx = bin_index(*lo, *width, counts.len(), v);
                counts[idx] += 1;
                sums[idx] += v;
                sq_sums[idx] += v * v;
                false
            }
        };
        if needs_bin_conversion {
            self.convert_to_binned();
        }
    }

    /// Whether [`Leaf::remove`] of `v` would succeed right now — the
    /// read-only half of the check-then-apply delete protocol in
    /// [`crate::update`], which keeps sum counts and leaf masses consistent
    /// by refusing a delete along the *whole* routed path if any step would
    /// be a no-op.
    pub(crate) fn can_remove(&self, v: f64) -> bool {
        if !v.is_finite() {
            return self.null_count > 0;
        }
        match &self.kind {
            LeafKind::Exact { values, counts, .. } => values
                .binary_search_by(|a| a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal))
                .is_ok_and(|i| counts[i] > 0),
            LeafKind::Binned {
                lo, width, counts, ..
            } => counts[bin_index(*lo, *width, counts.len(), v)] > 0,
        }
    }

    /// Remove one observation. Returns false if the value was not present
    /// (the leaf is left unchanged in that case).
    pub fn remove(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            if self.null_count == 0 {
                return false;
            }
            self.null_count -= 1;
            self.total -= 1;
            self.dirty = true;
            return true;
        }
        let removed = match &mut self.kind {
            LeafKind::Exact { values, counts, .. } => {
                match values
                    .binary_search_by(|a| a.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal))
                {
                    Ok(i) if counts[i] > 0 => {
                        counts[i] -= 1;
                        if counts[i] == 0 {
                            values.remove(i);
                            counts.remove(i);
                        }
                        true
                    }
                    _ => false,
                }
            }
            LeafKind::Binned {
                lo,
                width,
                counts,
                sums,
                sq_sums,
                ..
            } => {
                let idx = bin_index(*lo, *width, counts.len(), v);
                if counts[idx] == 0 {
                    false
                } else {
                    counts[idx] -= 1;
                    sums[idx] -= v;
                    sq_sums[idx] -= v * v;
                    true
                }
            }
        };
        if removed {
            self.total -= 1;
            self.dirty = true;
        }
        removed
    }

    /// Serialize to the snapshot wire format (prefix sums are rebuilt on
    /// load, not stored).
    pub(crate) fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use crate::wire::*;
        write_u32(w, self.col as u32)?;
        write_u8(w, u8::from(self.discrete))?;
        write_u64(w, self.null_count)?;
        write_u64(w, self.total)?;
        write_u32(w, self.max_distinct_exact as u32)?;
        write_u32(w, self.n_bins as u32)?;
        match &self.kind {
            LeafKind::Exact { values, counts, .. } => {
                write_u8(w, 0)?;
                write_f64s(w, values)?;
                write_u64s(w, counts)?;
            }
            LeafKind::Binned {
                lo,
                width,
                counts,
                sums,
                sq_sums,
                distincts,
            } => {
                write_u8(w, 1)?;
                write_f64(w, *lo)?;
                write_f64(w, *width)?;
                write_u64s(w, counts)?;
                write_f64s(w, sums)?;
                write_f64s(w, sq_sums)?;
                write_u64s(w, distincts)?;
            }
        }
        Ok(())
    }

    /// Deserialize from the snapshot wire format.
    pub(crate) fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use crate::wire::*;
        let col = read_u32(r)? as usize;
        let discrete = read_u8(r)? != 0;
        let null_count = read_u64(r)?;
        let total = read_u64(r)?;
        let max_distinct_exact = read_u32(r)? as usize;
        let n_bins = read_u32(r)? as usize;
        let kind = match read_u8(r)? {
            0 => {
                let values = read_f64s(r)?;
                let counts = read_u64s(r)?;
                if values.len() != counts.len() {
                    return Err(corrupt("leaf value/count mismatch"));
                }
                LeafKind::Exact {
                    values,
                    counts,
                    cum: Default::default(),
                }
            }
            1 => {
                let lo = read_f64(r)?;
                let width = read_f64(r)?;
                let counts = read_u64s(r)?;
                let sums = read_f64s(r)?;
                let sq_sums = read_f64s(r)?;
                let distincts = read_u64s(r)?;
                if sums.len() != counts.len()
                    || sq_sums.len() != counts.len()
                    || distincts.len() != counts.len()
                {
                    return Err(corrupt("leaf bin arity"));
                }
                LeafKind::Binned {
                    lo,
                    width,
                    counts,
                    sums,
                    sq_sums,
                    distincts,
                }
            }
            _ => return Err(corrupt("leaf kind tag")),
        };
        let mut leaf = Leaf {
            col,
            discrete,
            null_count,
            total,
            kind,
            max_distinct_exact,
            n_bins,
            dirty: true,
        };
        leaf.rebuild_prefix();
        Ok(leaf)
    }

    /// Structural sanity for snapshot loading (see
    /// `serialize::validate_node`): every bound here guards a concrete
    /// panic or unbounded allocation a corrupted snapshot could otherwise
    /// trigger downstream.
    pub(crate) fn validate(&self, n_cols: usize) -> std::io::Result<()> {
        use crate::wire::corrupt;
        if self.col >= n_cols {
            return Err(corrupt("leaf column"));
        }
        // `bin_index` clamps to `n_bins - 1` (panics on 0) and exact→binned
        // conversion allocates `n_bins`-sized vectors.
        if self.n_bins == 0 || self.n_bins > 1 << 24 {
            return Err(corrupt("leaf bin count"));
        }
        if let LeafKind::Binned { counts, .. } = &self.kind {
            if counts.len() != self.n_bins {
                return Err(corrupt("leaf bin count mismatch"));
            }
        }
        Ok(())
    }

    /// Bitwise equality of the histogram state (floats compared by bit
    /// pattern; the lazy `dirty` flag and cached prefix sums are excluded —
    /// they are derived state). Used by [`crate::CompiledSpn::bitwise_eq`].
    pub(crate) fn bitwise_eq(&self, other: &Self) -> bool {
        fn bits_eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        if self.col != other.col
            || self.discrete != other.discrete
            || self.null_count != other.null_count
            || self.total != other.total
            || self.max_distinct_exact != other.max_distinct_exact
            || self.n_bins != other.n_bins
        {
            return false;
        }
        match (&self.kind, &other.kind) {
            (
                LeafKind::Exact {
                    values: va,
                    counts: ca,
                    ..
                },
                LeafKind::Exact {
                    values: vb,
                    counts: cb,
                    ..
                },
            ) => bits_eq(va, vb) && ca == cb,
            (
                LeafKind::Binned {
                    lo: la,
                    width: wa,
                    counts: ca,
                    sums: sa,
                    sq_sums: qa,
                    distincts: da,
                },
                LeafKind::Binned {
                    lo: lb,
                    width: wb,
                    counts: cb,
                    sums: sb,
                    sq_sums: qb,
                    distincts: db,
                },
            ) => {
                la.to_bits() == lb.to_bits()
                    && wa.to_bits() == wb.to_bits()
                    && ca == cb
                    && bits_eq(sa, sb)
                    && bits_eq(qa, qb)
                    && da == db
            }
            _ => false,
        }
    }

    fn convert_to_binned(&mut self) {
        let LeafKind::Exact { values, counts, .. } = &self.kind else {
            return;
        };
        let lo = values[0];
        let hi = *values.last().unwrap();
        let n_bins = self.n_bins;
        let width = ((hi - lo) / n_bins as f64).max(1e-12);
        let mut bc = vec![0u64; n_bins];
        let mut sums = vec![0.0; n_bins];
        let mut sq = vec![0.0; n_bins];
        let mut distincts = vec![0u64; n_bins];
        for (v, c) in values.iter().zip(counts) {
            let idx = (((v - lo) / width) as usize).min(n_bins - 1);
            bc[idx] += c;
            sums[idx] += v * *c as f64;
            sq[idx] += v * v * *c as f64;
            distincts[idx] += 1;
        }
        self.kind = LeafKind::Binned {
            lo,
            width,
            counts: bc,
            sums,
            sq_sums: sq,
            distincts,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, DataView, LeafFunc, LeafPred};

    fn leaf_from(values: &[f64], discrete: bool) -> Leaf {
        let cols = vec![values.to_vec()];
        let meta = vec![if discrete {
            ColumnMeta::discrete("x")
        } else {
            ColumnMeta::continuous("x")
        }];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..values.len() as u32).collect();
        Leaf::build(&data, &rows, 0, 1000, 16)
    }

    /// Brute-force reference for E[g(X)·1_pred].
    fn brute(values: &[f64], func: LeafFunc, preds: &[LeafPred]) -> f64 {
        let np = super::NormPred::new(preds);
        let mut acc = 0.0;
        for &v in values {
            if !v.is_finite() {
                if np.want_null && matches!(func, LeafFunc::One) {
                    acc += 1.0;
                }
                continue;
            }
            if np.want_null {
                continue;
            }
            if np.value_passes(v) {
                acc += super::apply(func, v);
            }
        }
        acc / values.len() as f64
    }

    #[test]
    fn probabilities_match_brute_force() {
        let vals = vec![1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 5.0, f64::NAN, 8.0, 9.0];
        let mut leaf = leaf_from(&vals, true);
        let cases: Vec<Vec<LeafPred>> = vec![
            vec![],
            vec![LeafPred::Range {
                lo: 2.0,
                hi: 5.0,
                lo_incl: true,
                hi_incl: true,
            }],
            vec![LeafPred::Range {
                lo: 2.0,
                hi: 5.0,
                lo_incl: false,
                hi_incl: false,
            }],
            vec![LeafPred::In(vec![2.0, 9.0, 42.0])],
            vec![LeafPred::In(vec![5.0])],
            vec![LeafPred::In(vec![42.0])],
            vec![LeafPred::In(vec![f64::NAN])],
            vec![LeafPred::NotIn(vec![5.0])],
            vec![LeafPred::IsNull],
            vec![LeafPred::IsNotNull],
            vec![
                LeafPred::Range {
                    lo: 1.5,
                    hi: 8.5,
                    lo_incl: true,
                    hi_incl: true,
                },
                LeafPred::NotIn(vec![3.0]),
            ],
        ];
        for preds in &cases {
            for func in FUNCS {
                let got = leaf.expect(func, preds);
                let want = brute(&vals, func, preds);
                assert!(
                    (got - want).abs() < 1e-12,
                    "func {func:?} preds {preds:?}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn expectation_identity_without_preds_is_mean_including_null_weight() {
        let vals = vec![10.0, 20.0, f64::NAN, 30.0];
        let mut leaf = leaf_from(&vals, true);
        // E[X·1] where NULL contributes 0: 60/4.
        assert!((leaf.expect(LeafFunc::X, &[]) - 15.0).abs() < 1e-12);
        // P(not null) = 3/4 so the SQL AVG is the ratio.
        let p = leaf.expect(LeafFunc::One, &[LeafPred::IsNotNull]);
        assert!((leaf.expect(LeafFunc::X, &[]) / p - 20.0).abs() < 1e-12);
    }

    #[test]
    fn inv_clamp_behaviour_for_tuple_factors() {
        // F column with zeros must invert as 1/max(F,1).
        let vals = vec![0.0, 2.0, 2.0, 1.0];
        let mut leaf = leaf_from(&vals, true);
        let want = (1.0 + 0.5 + 0.5 + 1.0) / 4.0;
        assert!((leaf.expect(LeafFunc::InvClamp1, &[]) - want).abs() < 1e-12);
        let want_sq = (1.0 + 0.25 + 0.25 + 1.0) / 4.0;
        assert!((leaf.expect(LeafFunc::InvSqClamp1, &[]) - want_sq).abs() < 1e-12);
    }

    #[test]
    fn binned_leaf_range_queries_are_close() {
        // 10_000 distinct values force binning (limit 1000 in leaf_from).
        let vals: Vec<f64> = (0..10_000).map(|i| i as f64 + 0.5).collect();
        let mut leaf = leaf_from(&vals, false);
        let p = leaf.expect(
            LeafFunc::One,
            &[LeafPred::Range {
                lo: 0.0,
                hi: 2500.0,
                lo_incl: true,
                hi_incl: true,
            }],
        );
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
        let e = leaf.expect(LeafFunc::X, &[]);
        assert!((e - 5000.0).abs() < 10.0, "mean = {e}");
    }

    #[test]
    fn binned_point_query_uses_distinct_share() {
        let vals: Vec<f64> = (0..5000).map(|i| (i % 2500) as f64).collect();
        let mut leaf = leaf_from(&vals, false);
        // Each value appears twice among 5000 rows → P ≈ 1/2500.
        let p = leaf.expect(LeafFunc::One, &[LeafPred::In(vec![1200.0])]);
        assert!((p - 1.0 / 2500.0).abs() < 2e-4, "p = {p}");
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let vals = vec![1.0, 2.0, 3.0];
        let mut leaf = leaf_from(&vals, true);
        let before = leaf.expect(LeafFunc::One, &[LeafPred::In(vec![2.0])]);
        leaf.insert(2.0);
        assert!((leaf.expect(LeafFunc::One, &[LeafPred::In(vec![2.0])]) - 0.5).abs() < 1e-12);
        assert!(leaf.remove(2.0));
        assert!((leaf.expect(LeafFunc::One, &[LeafPred::In(vec![2.0])]) - before).abs() < 1e-12);
        assert!(!leaf.remove(42.0), "removing a missing value must fail");
        assert_eq!(leaf.total(), 3);
    }

    #[test]
    fn null_insert_and_remove() {
        let mut leaf = leaf_from(&[1.0, 2.0], true);
        leaf.insert(f64::NAN);
        assert_eq!(leaf.null_count(), 1);
        assert!((leaf.expect(LeafFunc::One, &[LeafPred::IsNull]) - 1.0 / 3.0).abs() < 1e-12);
        assert!(leaf.remove(f64::NAN));
        assert_eq!(leaf.null_count(), 0);
    }

    #[test]
    fn exact_leaf_converts_to_binned_on_overflow() {
        let cols = vec![(0..50).map(|i| i as f64).collect::<Vec<_>>()];
        let meta = vec![ColumnMeta::continuous("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..50).collect();
        let mut leaf = Leaf::build(&data, &rows, 0, 50, 8);
        assert!(matches!(leaf.kind, LeafKind::Exact { .. }));
        leaf.insert(123.456); // 51st distinct value exceeds the limit
        assert!(matches!(leaf.kind, LeafKind::Binned { .. }));
        // Mass is preserved through conversion.
        assert_eq!(leaf.total(), 51);
        let p_all = leaf.expect(LeafFunc::One, &[]);
        assert!((p_all - 1.0).abs() < 1e-9);
    }

    /// Satellite coverage: the batched prefix-sum probe walk must agree
    /// with per-slot evaluation bitwise, across every slot class (points,
    /// strict/inclusive/unbounded/empty ranges, General fallbacks,
    /// marginalized `None`), including values absent from the histogram.
    #[test]
    fn batched_prefix_probes_match_per_slot_bitwise() {
        let vals: Vec<f64> = (0..64).map(|i| ((i * 7) % 37) as f64).collect();
        let leaf = leaf_from(&vals, true);
        let range = |lo: f64, hi: f64, lo_incl: bool, hi_incl: bool| LeafPred::Range {
            lo,
            hi,
            lo_incl,
            hi_incl,
        };
        let slots: Vec<Option<(LeafFunc, NormPred)>> = vec![
            None,
            Some((LeafFunc::One, NormPred::new(&[LeafPred::In(vec![5.0])]))),
            Some((LeafFunc::X, NormPred::new(&[range(3.0, 20.0, true, false)]))),
            Some((
                LeafFunc::X2,
                NormPred::new(&[range(f64::NEG_INFINITY, 11.0, true, true)]),
            )),
            Some((
                LeafFunc::One,
                NormPred::new(&[range(14.0, f64::INFINITY, false, true)]),
            )),
            // General class → internal per-slot fallback.
            Some((LeafFunc::One, NormPred::new(&[LeafPred::NotIn(vec![4.0])]))),
            Some((LeafFunc::One, NormPred::new(&[LeafPred::IsNull]))),
            // Point absent from the histogram.
            Some((LeafFunc::One, NormPred::new(&[LeafPred::In(vec![400.0])]))),
            Some((
                LeafFunc::InvClamp1,
                NormPred::new(&[range(10.0, 10.0, true, true)]),
            )),
            // Contradictory range.
            Some((
                LeafFunc::One,
                NormPred::new(&[range(30.0, 2.0, true, true)]),
            )),
        ];
        let mut scratch = LeafBatchScratch::default();
        let mut got = Vec::new();
        assert!(
            leaf.expect_norm_batch(slots.iter().map(|s| s.as_ref()), &mut scratch, &mut got),
            "fan of {} slots over {} distinct values must take the batched walk",
            slots.len(),
            37
        );
        let want: Vec<f64> = slots
            .iter()
            .map(|s| match s {
                None => 1.0,
                Some((f, np)) => leaf.expect_norm(*f, np),
            })
            .collect();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "slot {i}: got {g}, want {w}");
        }

        // A lone slot's two boundaries fail the cost gate (2 searches are
        // cheaper than walking 37 values) — the caller falls back.
        let lone = [slots[2].clone()];
        let mut out = Vec::new();
        assert!(!leaf.expect_norm_batch(lone.iter().map(|s| s.as_ref()), &mut scratch, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn mode_returns_most_frequent() {
        let leaf = leaf_from(&[1.0, 2.0, 2.0, 3.0], true);
        assert_eq!(leaf.mode(), Some(2.0));
    }

    #[test]
    fn contradictory_preds_are_zero() {
        let mut leaf = leaf_from(&[1.0, 2.0, 3.0], true);
        let p = leaf.expect(
            LeafFunc::One,
            &[LeafPred::Range {
                lo: 2.5,
                hi: 2.0,
                lo_incl: true,
                hi_incl: true,
            }],
        );
        assert_eq!(p, 0.0);
        let p2 = leaf.expect(LeafFunc::One, &[LeafPred::IsNull, LeafPred::IsNotNull]);
        assert_eq!(p2, 0.0);
    }
}
