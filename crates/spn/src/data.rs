//! Column-major training data view.

/// Metadata of one training column.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    /// Display name (diagnostics only).
    pub name: String,
    /// Discrete columns get exact-match histograms; continuous columns may
    /// fall back to binning.
    pub discrete: bool,
}

impl ColumnMeta {
    pub fn discrete(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            discrete: true,
        }
    }

    pub fn continuous(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            discrete: false,
        }
    }
}

/// Borrowed column-major data: `cols[c][row]`, NaN encodes NULL.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    pub cols: &'a [Vec<f64>],
    pub meta: &'a [ColumnMeta],
}

impl<'a> DataView<'a> {
    pub fn new(cols: &'a [Vec<f64>], meta: &'a [ColumnMeta]) -> Self {
        assert_eq!(cols.len(), meta.len(), "column/metadata count mismatch");
        if let Some(first) = cols.first() {
            for c in cols {
                assert_eq!(c.len(), first.len(), "ragged columns");
            }
        }
        Self { cols, meta }
    }

    pub fn n_rows(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Value at (row, col); NaN = NULL.
    #[inline]
    pub fn value(&self, row: u32, col: usize) -> f64 {
        self.cols[col][row as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_basics() {
        let cols = vec![vec![1.0, 2.0], vec![f64::NAN, 4.0]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::continuous("b")];
        let v = DataView::new(&cols, &meta);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.n_cols(), 2);
        assert!(v.value(0, 1).is_nan());
        assert_eq!(v.value(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let cols = vec![vec![1.0], vec![1.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let _ = DataView::new(&cols, &meta);
    }
}
