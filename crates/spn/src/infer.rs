//! Inference: bottom-up evaluation of expectation queries and max-product
//! MPE (paper §3.1, §3.2 "Extended Inference Algorithms").

use crate::node::{Node, Spn};

/// Per-attribute moment function `g` applied inside an expectation.
///
/// `E[∏_c g_c(X_c) · 1_C]` factorizes over an SPN because every leaf holds a
/// single attribute: products multiply child expectations, sums average
/// them. The clamped inverses implement the paper's `1/F'` tuple-factor
/// normalization (Theorem 1) directly at the leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafFunc {
    /// g(x) = 1 (probability queries).
    One,
    /// g(x) = x.
    X,
    /// g(x) = x² (Koenig–Huygens variance terms).
    X2,
    /// g(x) = 1/max(x,1) (normalization by tuple factors `F'`).
    InvClamp1,
    /// g(x) = 1/max(x,1)² (variance of normalized expectations).
    InvSqClamp1,
}

/// A predicate evaluated at a leaf, in `f64` space (NaN is never matched
/// except by `IsNull`).
#[derive(Debug, Clone, PartialEq)]
pub enum LeafPred {
    /// Interval with per-side inclusivity; use ±∞ for one-sided ranges.
    Range {
        lo: f64,
        hi: f64,
        lo_incl: bool,
        hi_incl: bool,
    },
    /// Value must be one of the set.
    In(Vec<f64>),
    /// Value must be none of the set (NULL still fails — SQL `!=`).
    NotIn(Vec<f64>),
    IsNull,
    IsNotNull,
}

impl LeafPred {
    /// `x = v`.
    pub fn eq(v: f64) -> Self {
        LeafPred::In(vec![v])
    }

    /// `x ≤ v` / `x < v`.
    pub fn le(v: f64) -> Self {
        LeafPred::Range {
            lo: f64::NEG_INFINITY,
            hi: v,
            lo_incl: true,
            hi_incl: true,
        }
    }
    pub fn lt(v: f64) -> Self {
        LeafPred::Range {
            lo: f64::NEG_INFINITY,
            hi: v,
            lo_incl: true,
            hi_incl: false,
        }
    }

    /// `x ≥ v` / `x > v`.
    pub fn ge(v: f64) -> Self {
        LeafPred::Range {
            lo: v,
            hi: f64::INFINITY,
            lo_incl: true,
            hi_incl: true,
        }
    }
    pub fn gt(v: f64) -> Self {
        LeafPred::Range {
            lo: v,
            hi: f64::INFINITY,
            lo_incl: false,
            hi_incl: true,
        }
    }
}

/// Query slot for one column: an optional moment function plus a conjunction
/// of predicates.
#[derive(Debug, Clone, Default)]
pub struct Slot {
    pub func: Option<LeafFunc>,
    pub preds: Vec<LeafPred>,
}

/// An expectation query against an [`Spn`]: per-column slots. Columns
/// without slots are marginalized out.
#[derive(Debug, Clone)]
pub struct SpnQuery {
    slots: Vec<Option<Slot>>,
}

impl SpnQuery {
    pub fn new(n_cols: usize) -> Self {
        Self {
            slots: vec![None; n_cols],
        }
    }

    /// Attach a predicate to a column (conjunctive).
    pub fn with_pred(mut self, col: usize, pred: LeafPred) -> Self {
        self.add_pred(col, pred);
        self
    }

    pub fn add_pred(&mut self, col: usize, pred: LeafPred) {
        self.slots[col]
            .get_or_insert_with(Slot::default)
            .preds
            .push(pred);
    }

    /// Set the moment function of a column.
    pub fn with_func(mut self, col: usize, func: LeafFunc) -> Self {
        self.set_func(col, func);
        self
    }

    pub fn set_func(&mut self, col: usize, func: LeafFunc) {
        self.slots[col].get_or_insert_with(Slot::default).func = Some(func);
    }

    pub fn slot(&self, col: usize) -> Option<&Slot> {
        self.slots.get(col).and_then(Option::as_ref)
    }

    pub fn n_cols(&self) -> usize {
        self.slots.len()
    }

    /// Columns that carry a slot.
    pub fn active_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
    }

    /// Whether two queries have the same *shape*: identical slot layout,
    /// moment functions, predicate variant sequences, range inclusivity
    /// flags, and value-set lengths — everything except the literal `f64`
    /// values themselves. Shape-equal queries expose identical
    /// [`SpnQuery::for_each_literal`] walks, which is what lets a plan cache
    /// rebind literals into a cached probe structure.
    pub fn same_shape(&self, other: &SpnQuery) -> bool {
        if self.slots.len() != other.slots.len() {
            return false;
        }
        self.slots
            .iter()
            .zip(&other.slots)
            .all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.func == b.func
                        && a.preds.len() == b.preds.len()
                        && a.preds.iter().zip(&b.preds).all(|(p, q)| match (p, q) {
                            (
                                LeafPred::Range {
                                    lo_incl: ali,
                                    hi_incl: ahi,
                                    ..
                                },
                                LeafPred::Range {
                                    lo_incl: bli,
                                    hi_incl: bhi,
                                    ..
                                },
                            ) => ali == bli && ahi == bhi,
                            (LeafPred::In(x), LeafPred::In(y)) => x.len() == y.len(),
                            (LeafPred::NotIn(x), LeafPred::NotIn(y)) => x.len() == y.len(),
                            (LeafPred::IsNull, LeafPred::IsNull) => true,
                            (LeafPred::IsNotNull, LeafPred::IsNotNull) => true,
                            _ => false,
                        })
                }
                _ => false,
            })
    }

    /// Visit every literal `f64` of the query in a deterministic flat order:
    /// columns in index order, predicates in registration order, and within
    /// a predicate `Range` lo then hi, then `In`/`NotIn` elements in order.
    /// [`SpnQuery::for_each_literal_mut`] walks the identical sequence, so a
    /// flat index recorded against one shape-equal query addresses the same
    /// literal in another.
    pub fn for_each_literal(&self, mut f: impl FnMut(f64)) {
        for slot in self.slots.iter().flatten() {
            for p in &slot.preds {
                match p {
                    LeafPred::Range { lo, hi, .. } => {
                        f(*lo);
                        f(*hi);
                    }
                    LeafPred::In(vs) | LeafPred::NotIn(vs) => vs.iter().for_each(|v| f(*v)),
                    LeafPred::IsNull | LeafPred::IsNotNull => {}
                }
            }
        }
    }

    /// Mutable twin of [`SpnQuery::for_each_literal`] (same order).
    pub fn for_each_literal_mut(&mut self, mut f: impl FnMut(&mut f64)) {
        for slot in self.slots.iter_mut().flatten() {
            for p in &mut slot.preds {
                match p {
                    LeafPred::Range { lo, hi, .. } => {
                        f(lo);
                        f(hi);
                    }
                    LeafPred::In(vs) | LeafPred::NotIn(vs) => {
                        for v in vs.iter_mut() {
                            f(v);
                        }
                    }
                    LeafPred::IsNull | LeafPred::IsNotNull => {}
                }
            }
        }
    }
}

/// Bottom-up expectation evaluation.
pub(crate) fn evaluate(node: &mut Node, query: &SpnQuery) -> f64 {
    match node {
        Node::Leaf(leaf) => match query.slot(leaf.col) {
            None => 1.0,
            Some(slot) => leaf.expect(slot.func.unwrap_or(LeafFunc::One), &slot.preds),
        },
        Node::Product(p) => {
            let mut acc = 1.0;
            for child in &mut p.children {
                acc *= evaluate(child, query);
                if acc == 0.0 {
                    return 0.0;
                }
            }
            acc
        }
        Node::Sum(s) => {
            let total: u64 = s.counts.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let mut acc = 0.0;
            for (child, &c) in s.children.iter_mut().zip(&s.counts) {
                if c == 0 {
                    continue;
                }
                acc += (c as f64 / total as f64) * evaluate(child, query);
            }
            acc
        }
    }
}

/// Max-product traversal: likelihood of the evidence on the most probable
/// branch, together with the mode of `target` on that branch.
///
/// This is the **reference oracle** for the compiled max-product pass in
/// [`crate::MaxProductEvaluator`]; production MPE runs on the arena. The two
/// share one tie-break rule — at a sum node the **lowest-index child wins**
/// among equally scored branches (a later child must be *strictly* better to
/// replace the incumbent) — and one arithmetic order (the mixture weight
/// `c/total` is formed first, then multiplied into the child score, exactly
/// as the arena stores frozen weights), so the differential tests in
/// `tests/prop_mpe.rs` can assert bitwise equality, not approximation.
pub(crate) fn mpe(node: &mut Node, query: &SpnQuery, target: usize) -> (f64, Option<f64>) {
    match node {
        Node::Leaf(leaf) => {
            if leaf.col == target {
                (1.0, leaf.mode())
            } else {
                match query.slot(leaf.col) {
                    None => (1.0, None),
                    Some(slot) => (
                        leaf.expect(slot.func.unwrap_or(LeafFunc::One), &slot.preds),
                        None,
                    ),
                }
            }
        }
        Node::Product(p) => {
            let mut score = 1.0;
            let mut value = None;
            for child in &mut p.children {
                let (s, v) = mpe(child, query, target);
                score *= s;
                value = value.or(v);
            }
            (score, value)
        }
        Node::Sum(s) => {
            let total: u64 = s.counts.iter().sum();
            if total == 0 {
                return (0.0, None);
            }
            let mut best: Option<(f64, Option<f64>)> = None;
            for (child, &c) in s.children.iter_mut().zip(&s.counts) {
                if c == 0 {
                    continue;
                }
                let w = c as f64 / total as f64;
                let (score, v) = mpe(child, query, target);
                let weighted = w * score;
                match best {
                    Some((incumbent, _)) if weighted <= incumbent => {}
                    _ => best = Some((weighted, v)),
                }
            }
            best.unwrap_or((0.0, None))
        }
    }
}

impl Spn {
    /// Evaluate `E[∏ g_c(X_c) · 1_C]` (per-row expectation over the training
    /// distribution). Multiply by the modeled relation's row count to get
    /// totals.
    pub fn evaluate(&mut self, query: &SpnQuery) -> f64 {
        assert_eq!(query.n_cols(), self.n_columns(), "query arity mismatch");
        evaluate(&mut self.root, query)
    }

    /// Probability shorthand: evaluate with no moment functions.
    pub fn probability(&mut self, query: &SpnQuery) -> f64 {
        self.evaluate(query)
    }

    /// Most probable value of `target` given the evidence in `query`
    /// (approximate MPE via max-product), on the **recursive oracle path**.
    ///
    /// This exists for differential tests only; production classification
    /// runs on the compiled arena ([`crate::CompiledSpn::most_probable_value`]
    /// / [`crate::MaxProductEvaluator`]), which is `&self`, batched, and
    /// recursion-free while returning identical results.
    pub fn most_probable_value(&mut self, target: usize, query: &SpnQuery) -> Option<f64> {
        mpe(&mut self.root, query, target).1
    }

    /// Oracle twin of [`crate::MaxProductEvaluator`]'s per-probe outcome:
    /// the max-product evidence score together with the target's mode on the
    /// best branch. Differential-test use only.
    pub fn mpe_outcome(&mut self, target: usize, query: &SpnQuery) -> (f64, Option<f64>) {
        mpe(&mut self.root, query, target)
    }
}
