//! Minimal little-endian wire primitives for model snapshots.
//!
//! Hand-rolled (no serializer dependency): fixed-width integers/floats,
//! length-prefixed strings and vectors. Shared by the SPN serializer and the
//! ensemble snapshots in `deepdb-core`.

use std::io::{self, Read, Write};

pub fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

pub fn write_f64s(w: &mut impl Write, vs: &[f64]) -> io::Result<()> {
    write_u32(w, vs.len() as u32)?;
    for &v in vs {
        write_f64(w, v)?;
    }
    Ok(())
}

pub fn write_u64s(w: &mut impl Write, vs: &[u64]) -> io::Result<()> {
    write_u32(w, vs.len() as u32)?;
    for &v in vs {
        write_u64(w, v)?;
    }
    Ok(())
}

pub fn write_usizes(w: &mut impl Write, vs: &[usize]) -> io::Result<()> {
    write_u32(w, vs.len() as u32)?;
    for &v in vs {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

pub fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

pub fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

pub fn read_str(r: &mut impl Read) -> io::Result<String> {
    let n = read_u32(r)? as usize;
    if n > 1 << 24 {
        return Err(corrupt("string length"));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("utf8"))
}

pub fn read_f64s(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let n = read_u32(r)? as usize;
    if n > 1 << 28 {
        return Err(corrupt("vector length"));
    }
    (0..n).map(|_| read_f64(r)).collect()
}

pub fn read_u64s(r: &mut impl Read) -> io::Result<Vec<u64>> {
    let n = read_u32(r)? as usize;
    if n > 1 << 28 {
        return Err(corrupt("vector length"));
    }
    (0..n).map(|_| read_u64(r)).collect()
}

pub fn read_usizes(r: &mut impl Read) -> io::Result<Vec<usize>> {
    Ok(read_u64s(r)?.into_iter().map(|v| v as usize).collect())
}

/// Uniform corrupt-snapshot error.
pub fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt snapshot: {what}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u32(&mut buf, 123456).unwrap();
        write_u64(&mut buf, u64::MAX - 3).unwrap();
        write_i64(&mut buf, -42).unwrap();
        write_f64(&mut buf, -1.5e300).unwrap();
        write_str(&mut buf, "héllo").unwrap();
        write_f64s(&mut buf, &[1.0, f64::NAN, 3.0]).unwrap();
        write_u64s(&mut buf, &[9, 8]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u32(&mut r).unwrap(), 123456);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(read_i64(&mut r).unwrap(), -42);
        assert_eq!(read_f64(&mut r).unwrap(), -1.5e300);
        assert_eq!(read_str(&mut r).unwrap(), "héllo");
        let fs = read_f64s(&mut r).unwrap();
        assert_eq!(fs[0], 1.0);
        assert!(fs[1].is_nan());
        assert_eq!(read_u64s(&mut r).unwrap(), vec![9, 8]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1).unwrap();
        let mut r = &buf[..4];
        assert!(read_u64(&mut r).is_err());
    }
}
