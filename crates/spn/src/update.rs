//! Direct RSPN updates — paper Algorithm 1 (§5.2).
//!
//! Inserted (deleted) tuples traverse the tree: sum nodes route to the
//! nearest stored cluster centroid and adjust their weight counts, product
//! nodes fan the tuple out to every child (scope projection is implicit —
//! leaves read only their own column), and leaves adjust their value
//! histograms. The structure never changes; only weights and leaf
//! distributions do — which is exactly why a [`crate::CompiledSpn`] arena
//! can be **patched in place** instead of rebuilt:
//!
//! * the patched entry points ([`Spn::insert_patch`], [`Spn::delete_patch`],
//!   [`Spn::insert_batch`], [`Spn::delete_batch`]) walk the tree and the
//!   arena in lockstep (the arena's child order mirrors the tree's), apply
//!   identical count/histogram edits to both, and defer weight
//!   renormalization and leaf prefix rebuilds into an
//!   [`crate::arena::ArenaPatch`] committed once per call — O(depth +
//!   touched bins) per tuple, independent of model size;
//! * [`Spn::insert_batch`] routes the whole batch in **one traversal**,
//!   partitioning tuples at each sum node, so every touched sum is
//!   renormalized once per batch rather than once per tuple;
//! * deletes are **check-then-apply**: a read-only routing pass first
//!   verifies every routed sum count and leaf mass can absorb the decrement,
//!   and the delete becomes a consistent no-op along the whole path
//!   otherwise (an empty-cluster delete used to decrement the routed leaf
//!   while the sum count saturated at zero, desynchronizing the two).
//!
//! Batched and one-by-one application produce bitwise-identical models: the
//! exact integer count edits commute, leaf histogram edits land in the same
//! per-leaf order, and the deferred renormalization is a pure function of
//! the final counts.

use crate::arena::ArenaPatch;
use crate::node::{Node, Spn, SumNode};
use crate::CompiledSpn;

/// Distance of a full tuple to a sum-node centroid in that node's z-space.
fn centroid_distance(sum: &SumNode, centroid: &[f64], tuple: &[f64]) -> f64 {
    let mut d = 0.0;
    for (j, &col) in sum.scope.iter().enumerate() {
        let v = tuple[col];
        let (mean, std) = sum.norm[j];
        let z = if v.is_finite() { (v - mean) / std } else { 0.0 };
        let diff = z - centroid[j];
        d += diff * diff;
    }
    d
}

fn nearest_child(sum: &SumNode, tuple: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in sum.centroids.iter().enumerate() {
        let d = centroid_distance(sum, c, tuple);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Arena access for the lockstep walks: `None` for tree-only updates,
/// `Some` to patch a compiled arena in place alongside the tree.
type ArenaView<'a> = Option<(&'a mut CompiledSpn, &'a mut ArenaPatch)>;

/// Insert a batch of tuples below `node` in one traversal: partition at sum
/// nodes, fan out at products, apply every value at the leaves. `arena_id`
/// is `node`'s arena id when patching (child `k` of the tree node is child
/// `k` of the arena node, by construction of the flattening).
fn insert_rec(node: &mut Node, arena: &mut ArenaView<'_>, arena_id: u32, tuples: &[&[f64]]) {
    match node {
        Node::Leaf(leaf) => {
            if let Some((compiled, patch)) = arena {
                let payload = compiled.leaf_payload(arena_id);
                let arena_leaf = compiled.leaf_mut(payload);
                for t in tuples {
                    leaf.insert(t[leaf.col]);
                    arena_leaf.insert(t[leaf.col]);
                }
                patch.touch_leaf(payload);
            } else {
                for t in tuples {
                    leaf.insert(t[leaf.col]);
                }
            }
        }
        Node::Product(prod) => {
            for (k, child) in prod.children.iter_mut().enumerate() {
                let child_id = arena
                    .as_ref()
                    .map_or(0, |(compiled, _)| compiled.child_id(arena_id, k));
                insert_rec(child, arena, child_id, tuples);
            }
        }
        Node::Sum(sum) => {
            let mut groups: Vec<Vec<&[f64]>> = vec![Vec::new(); sum.children.len()];
            for t in tuples {
                groups[nearest_child(sum, t)].push(t);
            }
            if let Some((_, patch)) = arena {
                patch.touch_sum(arena_id);
            }
            for (k, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                sum.counts[k] += group.len() as u64;
                let child_id = if let Some((compiled, _)) = arena {
                    compiled.sum_count_delta(arena_id, k, group.len() as i64);
                    compiled.child_id(arena_id, k)
                } else {
                    0
                };
                insert_rec(&mut sum.children[k], arena, child_id, group);
            }
        }
    }
}

/// Allocation-free single-tuple insert (the per-row hot path of
/// `Ensemble::apply_insert`): identical routing and edits to a one-element
/// [`insert_rec`], minus the per-sum partition buffers.
fn insert_one_rec(node: &mut Node, arena: &mut ArenaView<'_>, arena_id: u32, tuple: &[f64]) {
    match node {
        Node::Leaf(leaf) => {
            leaf.insert(tuple[leaf.col]);
            if let Some((compiled, patch)) = arena {
                let payload = compiled.leaf_payload(arena_id);
                compiled.leaf_mut(payload).insert(tuple[leaf.col]);
                patch.touch_leaf(payload);
            }
        }
        Node::Product(prod) => {
            for (k, child) in prod.children.iter_mut().enumerate() {
                let child_id = arena
                    .as_ref()
                    .map_or(0, |(compiled, _)| compiled.child_id(arena_id, k));
                insert_one_rec(child, arena, child_id, tuple);
            }
        }
        Node::Sum(sum) => {
            let k = nearest_child(sum, tuple);
            sum.counts[k] += 1;
            let child_id = if let Some((compiled, patch)) = arena {
                compiled.sum_count_delta(arena_id, k, 1);
                patch.touch_sum(arena_id);
                compiled.child_id(arena_id, k)
            } else {
                0
            };
            insert_one_rec(&mut sum.children[k], arena, child_id, tuple);
        }
    }
}

/// Read-only routing pass of the check-then-apply delete protocol: `true`
/// iff removing `tuple` succeeds at every routed sum edge and leaf. Routing
/// depends only on the (immutable) centroids, so the subsequent apply pass
/// takes exactly the same path.
fn can_delete(node: &Node, tuple: &[f64]) -> bool {
    match node {
        Node::Leaf(leaf) => leaf.can_remove(tuple[leaf.col]),
        Node::Sum(sum) => {
            let child = nearest_child(sum, tuple);
            sum.counts[child] > 0 && can_delete(&sum.children[child], tuple)
        }
        Node::Product(prod) => prod.children.iter().all(|c| can_delete(c, tuple)),
    }
}

/// Apply one validated delete along the routed path (tree + optional arena).
fn delete_rec(node: &mut Node, arena: &mut ArenaView<'_>, arena_id: u32, tuple: &[f64]) {
    match node {
        Node::Leaf(leaf) => {
            let removed = leaf.remove(tuple[leaf.col]);
            debug_assert!(removed, "delete validated by can_delete");
            if let Some((compiled, patch)) = arena {
                let payload = compiled.leaf_payload(arena_id);
                compiled.leaf_mut(payload).remove(tuple[leaf.col]);
                patch.touch_leaf(payload);
            }
        }
        Node::Sum(sum) => {
            let k = nearest_child(sum, tuple);
            sum.counts[k] -= 1;
            let child_id = if let Some((compiled, patch)) = arena {
                compiled.sum_count_delta(arena_id, k, -1);
                patch.touch_sum(arena_id);
                compiled.child_id(arena_id, k)
            } else {
                0
            };
            delete_rec(&mut sum.children[k], arena, child_id, tuple);
        }
        Node::Product(prod) => {
            for (k, child) in prod.children.iter_mut().enumerate() {
                let child_id = arena
                    .as_ref()
                    .map_or(0, |(compiled, _)| compiled.child_id(arena_id, k));
                delete_rec(child, arena, child_id, tuple);
            }
        }
    }
}

impl Spn {
    fn check_tuple(&self, tuple: &[f64]) {
        assert_eq!(tuple.len(), self.n_columns(), "tuple arity mismatch");
    }

    fn check_arena(&self, arena: &CompiledSpn) {
        assert_eq!(
            arena.n_columns(),
            self.n_columns(),
            "arena does not belong to this SPN"
        );
        assert_eq!(
            arena.n_rows(),
            self.n_rows(),
            "arena out of sync with the tree; recompile before patching"
        );
    }

    fn root_id(arena: &CompiledSpn) -> u32 {
        arena.n_nodes() as u32 - 1
    }

    /// Insert one tuple (full row over all columns, NaN = NULL) into the
    /// tree only. Any previously compiled arena goes stale — prefer
    /// [`Spn::insert_patch`] when one is live.
    pub fn insert(&mut self, tuple: &[f64]) {
        self.check_tuple(tuple);
        insert_one_rec(&mut self.root, &mut None, 0, tuple);
        self.n_rows += 1;
    }

    /// Delete one tuple from the tree only (routed like an insert; weights
    /// decrease). Returns `false` — leaving the model untouched — if the
    /// routed path cannot absorb the delete (empty cluster or absent value).
    pub fn delete(&mut self, tuple: &[f64]) -> bool {
        self.check_tuple(tuple);
        if !can_delete(&self.root, tuple) {
            return false;
        }
        delete_rec(&mut self.root, &mut None, 0, tuple);
        self.n_rows -= 1;
        true
    }

    /// Update = delete the old tuple, insert the new one. The insert is
    /// skipped (and `false` returned) when the old tuple is not present.
    pub fn update(&mut self, old: &[f64], new: &[f64]) -> bool {
        if !self.delete(old) {
            return false;
        }
        self.insert(new);
        true
    }

    /// Insert one tuple into the tree **and** patch `arena` in place:
    /// O(depth + touched bins), no recompilation, no allocation on the
    /// routed walk, bitwise identical to a full recompile of the updated
    /// tree.
    pub fn insert_patch(&mut self, arena: &mut CompiledSpn, tuple: &[f64]) {
        self.check_tuple(tuple);
        self.check_arena(arena);
        let root_id = Self::root_id(arena);
        let mut patch = ArenaPatch::default();
        let mut view = Some((&mut *arena, &mut patch));
        insert_one_rec(&mut self.root, &mut view, root_id, tuple);
        self.n_rows += 1;
        arena.commit_patch(patch, self.n_rows);
    }

    /// Batched in-place insert: routes all `tuples` in one traversal
    /// (partitioning them at each sum node) and folds the arena deltas per
    /// node — one weight renormalization per touched sum and one prefix
    /// rebuild per touched leaf for the whole batch.
    pub fn insert_batch<R: AsRef<[f64]>>(&mut self, arena: &mut CompiledSpn, tuples: &[R]) {
        if let [tuple] = tuples {
            // Partition buffers are pure overhead for a batch of one.
            return self.insert_patch(arena, tuple.as_ref());
        }
        let tuples: Vec<&[f64]> = tuples.iter().map(AsRef::as_ref).collect();
        for t in &tuples {
            self.check_tuple(t);
        }
        self.check_arena(arena);
        if tuples.is_empty() {
            return;
        }
        let root_id = Self::root_id(arena);
        let mut patch = ArenaPatch::default();
        let mut view = Some((&mut *arena, &mut patch));
        insert_rec(&mut self.root, &mut view, root_id, &tuples);
        self.n_rows += tuples.len() as u64;
        arena.commit_patch(patch, self.n_rows);
    }

    /// Delete one tuple from the tree **and** patch `arena` in place.
    /// Returns `false` (a consistent no-op on both representations) if the
    /// routed path cannot absorb the delete.
    pub fn delete_patch(&mut self, arena: &mut CompiledSpn, tuple: &[f64]) -> bool {
        self.delete_batch(arena, &[tuple]) == 1
    }

    /// Batched in-place delete; returns how many tuples were actually
    /// removed. Deletes are validated (and applied) tuple by tuple so the
    /// all-or-nothing path consistency holds even when tuples within the
    /// batch compete for the same leaf mass, but the arena finalization
    /// (renormalization, prefix rebuilds) is still folded to once per
    /// touched node per batch.
    pub fn delete_batch<R: AsRef<[f64]>>(
        &mut self,
        arena: &mut CompiledSpn,
        tuples: &[R],
    ) -> usize {
        let tuples: Vec<&[f64]> = tuples.iter().map(AsRef::as_ref).collect();
        for t in &tuples {
            self.check_tuple(t);
        }
        self.check_arena(arena);
        let root_id = Self::root_id(arena);
        let mut patch = ArenaPatch::default();
        let mut applied = 0usize;
        for t in &tuples {
            if !can_delete(&self.root, t) {
                continue;
            }
            let mut view = Some((&mut *arena, &mut patch));
            delete_rec(&mut self.root, &mut view, root_id, t);
            applied += 1;
        }
        self.n_rows -= applied as u64;
        arena.commit_patch(patch, self.n_rows);
        applied
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnMeta, DataView, LeafPred, Spn, SpnParams, SpnQuery};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn clustered_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<ColumnMeta>) {
        let mut rng = lcg(seed);
        let mut region = Vec::new();
        let mut age = Vec::new();
        for _ in 0..n {
            if rng() < 0.3 {
                region.push(0.0);
                age.push(60.0 + (rng() * 40.0).floor());
            } else {
                region.push(1.0);
                age.push(20.0 + (rng() * 30.0).floor());
            }
        }
        (
            vec![region, age],
            vec![ColumnMeta::discrete("region"), ColumnMeta::discrete("age")],
        )
    }

    #[test]
    fn inserts_shift_probabilities_toward_new_distribution() {
        let (cols, meta) = clustered_data(4000, 1);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let q = SpnQuery::new(2)
            .with_pred(0, LeafPred::eq(0.0))
            .with_pred(1, LeafPred::lt(30.0));
        let before = spn.probability(&q);
        assert!(before < 0.02);
        // Insert 2000 young Europeans — the paper's motivating update case.
        for i in 0..2000 {
            spn.insert(&[0.0, 20.0 + (i % 10) as f64]);
        }
        let after = spn.probability(&q);
        // True share is 2000/6000 ≈ 0.33.
        assert!(after > 0.2, "P(EU ∧ young) after inserts = {after}");
        assert_eq!(spn.n_rows(), 6000);
    }

    #[test]
    fn insert_then_delete_restores_probabilities() {
        let (cols, meta) = clustered_data(3000, 5);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let q = SpnQuery::new(2).with_pred(1, LeafPred::ge(60.0));
        let before = spn.probability(&q);
        let tuples: Vec<[f64; 2]> = (0..500).map(|i| [1.0, 90.0 + (i % 5) as f64]).collect();
        for t in &tuples {
            spn.insert(t);
        }
        assert!(spn.probability(&q) > before);
        for t in &tuples {
            spn.delete(t);
        }
        let after = spn.probability(&q);
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
        assert_eq!(spn.n_rows(), 3000);
    }

    #[test]
    fn update_moves_mass_between_values() {
        let (cols, meta) = clustered_data(2000, 9);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let p_eu_before = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)));
        spn.update(&[0.0, 70.0], &[1.0, 25.0]);
        let p_eu_after = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)));
        assert!(p_eu_after < p_eu_before);
        assert_eq!(spn.n_rows(), 2000);
    }

    #[test]
    fn null_tuples_update_null_mass() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0, 2.0, f64::NAN]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let q = SpnQuery::new(2).with_pred(1, LeafPred::IsNull);
        let before = spn.probability(&q);
        spn.insert(&[5.0, f64::NAN]);
        let after = spn.probability(&q);
        assert!(after > before, "{after} <= {before}");
    }

    /// Regression: deleting a tuple the model does not hold used to
    /// `saturating_sub` the routed sum count (stuck at zero) while still
    /// draining the routed leaf's histogram — leaving sum counts and leaf
    /// totals inconsistent. Deletes are now all-or-nothing along the path.
    #[test]
    fn absent_tuple_delete_is_a_consistent_noop() {
        let (cols, meta) = clustered_data(1500, 3);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        assert_eq!(spn.consistency_error(), None, "clean after learning");
        let q = SpnQuery::new(2).with_pred(1, LeafPred::ge(60.0));
        let before = spn.probability(&q);

        // Age 250 exists in no cluster: the delete must refuse entirely.
        assert!(!spn.delete(&[0.0, 250.0]));
        assert_eq!(spn.n_rows(), 1500);
        assert_eq!(spn.consistency_error(), None);
        assert_eq!(spn.probability(&q).to_bits(), before.to_bits());

        // An update whose old tuple is absent refuses too (no blind insert).
        assert!(!spn.update(&[1.0, 250.0], &[1.0, 25.0]));
        assert_eq!(spn.n_rows(), 1500);
        assert_eq!(spn.consistency_error(), None);
    }

    #[test]
    fn patched_arena_tracks_insert_and_delete() {
        let (cols, meta) = clustered_data(2500, 7);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let mut arena = spn.compile();
        let q = SpnQuery::new(2)
            .with_pred(0, LeafPred::eq(0.0))
            .with_pred(1, LeafPred::lt(30.0));

        for i in 0..800 {
            spn.insert_patch(&mut arena, &[0.0, 20.0 + (i % 10) as f64]);
        }
        // The arena answered without any recompilation…
        assert!(arena.evaluate(&q) > 0.1);
        // …and matches a from-scratch compile bit for bit.
        assert!(arena.bitwise_eq(&spn.compile()));

        let removed = spn.delete_batch(
            &mut arena,
            &(0..800)
                .map(|i| [0.0, 20.0 + (i % 10) as f64])
                .collect::<Vec<_>>(),
        );
        assert_eq!(removed, 800);
        assert_eq!(arena.n_rows(), 2500);
        assert!(arena.bitwise_eq(&spn.compile()));
        assert_eq!(spn.consistency_error(), None);
    }

    /// The arena's neutral (empty-query) tables must track in-place
    /// patches: a weight-moving patch triggers a rebuild, so a pruned
    /// sweep's seeded boundary can never read pre-update values. Poisoning
    /// the cached root entries first makes the refresh observable even when
    /// the genuine neutral values happen not to move bitwise.
    #[test]
    fn neutral_tables_refresh_after_in_place_patches() {
        let (cols, meta) = clustered_data(2000, 11);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let mut arena = spn.compile();

        let root = arena.neutral_expect.len() - 1;
        arena.neutral_expect[root] = -123.0;
        arena.neutral_mpe[root] = -123.0;

        for i in 0..200 {
            spn.insert_patch(&mut arena, &[0.0, 20.0 + (i % 10) as f64]);
        }
        let empty = SpnQuery::new(2);
        assert_eq!(
            arena.neutral_expect[root].to_bits(),
            arena.evaluate(&empty).to_bits(),
            "neutral root must be rebuilt to the empty-query sweep value"
        );
        assert!(
            arena.bitwise_eq(&spn.compile()),
            "patched arena (neutral tables included) must match a recompile"
        );
    }
}
