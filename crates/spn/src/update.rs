//! Direct RSPN updates — paper Algorithm 1 (§5.2).
//!
//! Inserted (deleted) tuples traverse the tree: sum nodes route to the
//! nearest stored cluster centroid and adjust their weight counts, product
//! nodes fan the tuple out to every child (scope projection is implicit —
//! leaves read only their own column), and leaves adjust their value
//! histograms. The structure never changes; only weights and leaf
//! distributions do.

use crate::node::{Node, Spn, SumNode};

/// Distance of a full tuple to a sum-node centroid in that node's z-space.
fn centroid_distance(sum: &SumNode, centroid: &[f64], tuple: &[f64]) -> f64 {
    let mut d = 0.0;
    for (j, &col) in sum.scope.iter().enumerate() {
        let v = tuple[col];
        let (mean, std) = sum.norm[j];
        let z = if v.is_finite() { (v - mean) / std } else { 0.0 };
        let diff = z - centroid[j];
        d += diff * diff;
    }
    d
}

fn nearest_child(sum: &SumNode, tuple: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in sum.centroids.iter().enumerate() {
        let d = centroid_distance(sum, c, tuple);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn insert_tuple(node: &mut Node, tuple: &[f64]) {
    match node {
        Node::Leaf(leaf) => leaf.insert(tuple[leaf.col]),
        Node::Sum(sum) => {
            let child = nearest_child(sum, tuple);
            sum.counts[child] += 1;
            insert_tuple(&mut sum.children[child], tuple);
        }
        Node::Product(prod) => {
            for child in &mut prod.children {
                insert_tuple(child, tuple);
            }
        }
    }
}

fn delete_tuple(node: &mut Node, tuple: &[f64]) {
    match node {
        Node::Leaf(leaf) => {
            leaf.remove(tuple[leaf.col]);
        }
        Node::Sum(sum) => {
            let child = nearest_child(sum, tuple);
            sum.counts[child] = sum.counts[child].saturating_sub(1);
            delete_tuple(&mut sum.children[child], tuple);
        }
        Node::Product(prod) => {
            for child in &mut prod.children {
                delete_tuple(child, tuple);
            }
        }
    }
}

impl Spn {
    /// Insert one tuple (full row over all columns, NaN = NULL).
    pub fn insert(&mut self, tuple: &[f64]) {
        assert_eq!(tuple.len(), self.n_columns(), "tuple arity mismatch");
        insert_tuple(&mut self.root, tuple);
        self.n_rows += 1;
    }

    /// Delete one tuple (routed like an insert; weights decrease).
    pub fn delete(&mut self, tuple: &[f64]) {
        assert_eq!(tuple.len(), self.n_columns(), "tuple arity mismatch");
        delete_tuple(&mut self.root, tuple);
        self.n_rows = self.n_rows.saturating_sub(1);
    }

    /// Update = delete the old tuple, insert the new one.
    pub fn update(&mut self, old: &[f64], new: &[f64]) {
        self.delete(old);
        self.insert(new);
    }
}

#[cfg(test)]
mod tests {
    use crate::{ColumnMeta, DataView, LeafPred, Spn, SpnParams, SpnQuery};

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn clustered_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<ColumnMeta>) {
        let mut rng = lcg(seed);
        let mut region = Vec::new();
        let mut age = Vec::new();
        for _ in 0..n {
            if rng() < 0.3 {
                region.push(0.0);
                age.push(60.0 + (rng() * 40.0).floor());
            } else {
                region.push(1.0);
                age.push(20.0 + (rng() * 30.0).floor());
            }
        }
        (
            vec![region, age],
            vec![ColumnMeta::discrete("region"), ColumnMeta::discrete("age")],
        )
    }

    #[test]
    fn inserts_shift_probabilities_toward_new_distribution() {
        let (cols, meta) = clustered_data(4000, 1);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let q = SpnQuery::new(2)
            .with_pred(0, LeafPred::eq(0.0))
            .with_pred(1, LeafPred::lt(30.0));
        let before = spn.probability(&q);
        assert!(before < 0.02);
        // Insert 2000 young Europeans — the paper's motivating update case.
        for i in 0..2000 {
            spn.insert(&[0.0, 20.0 + (i % 10) as f64]);
        }
        let after = spn.probability(&q);
        // True share is 2000/6000 ≈ 0.33.
        assert!(after > 0.2, "P(EU ∧ young) after inserts = {after}");
        assert_eq!(spn.n_rows(), 6000);
    }

    #[test]
    fn insert_then_delete_restores_probabilities() {
        let (cols, meta) = clustered_data(3000, 5);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let q = SpnQuery::new(2).with_pred(1, LeafPred::ge(60.0));
        let before = spn.probability(&q);
        let tuples: Vec<[f64; 2]> = (0..500).map(|i| [1.0, 90.0 + (i % 5) as f64]).collect();
        for t in &tuples {
            spn.insert(t);
        }
        assert!(spn.probability(&q) > before);
        for t in &tuples {
            spn.delete(t);
        }
        let after = spn.probability(&q);
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
        assert_eq!(spn.n_rows(), 3000);
    }

    #[test]
    fn update_moves_mass_between_values() {
        let (cols, meta) = clustered_data(2000, 9);
        let data = DataView::new(&cols, &meta);
        let mut spn = Spn::learn(data, &SpnParams::default());
        let p_eu_before = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)));
        spn.update(&[0.0, 70.0], &[1.0, 25.0]);
        let p_eu_after = spn.probability(&SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)));
        assert!(p_eu_after < p_eu_before);
        assert_eq!(spn.n_rows(), 2000);
    }

    #[test]
    fn null_tuples_update_null_mass() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0, 2.0, f64::NAN]];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        let mut spn = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let q = SpnQuery::new(2).with_pred(1, LeafPred::IsNull);
        let before = spn.probability(&q);
        spn.insert(&[5.0, f64::NAN]);
        let after = spn.probability(&q);
        assert!(after > before, "{after} <= {before}");
    }
}
