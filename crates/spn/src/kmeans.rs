//! Two-way k-means row clustering for sum nodes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DataView;

/// Result of [`kmeans_two`]: the split of `rows` into two clusters plus the
/// statistics the update algorithm needs to route future tuples.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Row ids per cluster (same universe as the input `rows`).
    pub clusters: [Vec<u32>; 2],
    /// Cluster centroids in z-score space, aligned with `scope`.
    pub centroids: [Vec<f64>; 2],
    /// Per-scope-column (mean, std) used for the z-transform.
    pub norm: Vec<(f64, f64)>,
}

/// Cluster `rows` of the scoped columns into two groups with k-means
/// (k-means++ seeding, Lloyd iterations) on z-scored values; NULLs map to the
/// column mean (z = 0). Returns `None` when the data cannot be split (fewer
/// than two rows, or all points identical).
pub fn kmeans_two(
    data: &DataView<'_>,
    rows: &[u32],
    scope: &[usize],
    seed: u64,
    max_iters: usize,
) -> Option<KMeansResult> {
    let n = rows.len();
    let d = scope.len();
    if n < 2 || d == 0 {
        return None;
    }

    // z-normalization statistics over the slice (NULLs excluded).
    let mut norm = Vec::with_capacity(d);
    for &c in scope {
        let mut sum = 0.0;
        let mut sq = 0.0;
        let mut k = 0usize;
        for &r in rows {
            let v = data.value(r, c);
            if v.is_finite() {
                sum += v;
                sq += v * v;
                k += 1;
            }
        }
        if k == 0 {
            norm.push((0.0, 1.0));
        } else {
            let mean = sum / k as f64;
            let var = (sq / k as f64 - mean * mean).max(0.0);
            let std = var.sqrt();
            norm.push((mean, if std > 1e-12 { std } else { 1.0 }));
        }
    }

    let feature = |r: u32, out: &mut Vec<f64>| {
        out.clear();
        for (j, &c) in scope.iter().enumerate() {
            let v = data.value(r, c);
            let (m, s) = norm[j];
            out.push(if v.is_finite() { (v - m) / s } else { 0.0 });
        }
    };

    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = Vec::with_capacity(d);

    // k-means++ for k = 2: first center uniform, second proportional to
    // squared distance.
    feature(rows[rng.gen_range(0..n)], &mut buf);
    let c0: Vec<f64> = buf.clone();
    let mut dists = Vec::with_capacity(n);
    let mut total = 0.0;
    for &r in rows {
        feature(r, &mut buf);
        let d2 = dist2(&buf, &c0);
        dists.push(d2);
        total += d2;
    }
    if total <= 1e-24 {
        return None; // all points identical in z-space
    }
    let mut pick = rng.gen_range(0.0..total);
    let mut second = rows[n - 1];
    for (i, &r) in rows.iter().enumerate() {
        if pick < dists[i] {
            second = r;
            break;
        }
        pick -= dists[i];
    }
    feature(second, &mut buf);
    let mut centroids = [c0, buf.clone()];

    let mut assignment = vec![0u8; n];
    for _ in 0..max_iters {
        let mut changed = false;
        let mut sums = [vec![0.0; d], vec![0.0; d]];
        let mut counts = [0usize; 2];
        for (i, &r) in rows.iter().enumerate() {
            feature(r, &mut buf);
            let a = dist2(&buf, &centroids[0]);
            let b = dist2(&buf, &centroids[1]);
            let cluster = u8::from(b < a);
            if assignment[i] != cluster {
                assignment[i] = cluster;
                changed = true;
            }
            counts[cluster as usize] += 1;
            for (s, v) in sums[cluster as usize].iter_mut().zip(&buf) {
                *s += v;
            }
        }
        if counts[0] == 0 || counts[1] == 0 {
            // Degenerate: re-seed the empty cluster with the farthest point.
            let empty = usize::from(counts[0] == 0);
            let full = 1 - empty;
            let far = rows
                .iter()
                .max_by(|&&a, &&b| {
                    let mut fa = Vec::new();
                    let mut fb = Vec::new();
                    feature(a, &mut fa);
                    feature(b, &mut fb);
                    dist2(&fa, &centroids[full])
                        .partial_cmp(&dist2(&fb, &centroids[full]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
                .unwrap();
            feature(far, &mut buf);
            centroids[empty] = buf.clone();
            continue;
        }
        for k in 0..2 {
            for (c, s) in centroids[k].iter_mut().zip(&sums[k]) {
                *c = s / counts[k] as f64;
            }
        }
        if !changed {
            break;
        }
    }

    let mut clusters = [Vec::new(), Vec::new()];
    for (i, &r) in rows.iter().enumerate() {
        clusters[assignment[i] as usize].push(r);
    }
    if clusters[0].is_empty() || clusters[1].is_empty() {
        return None;
    }
    Some(KMeansResult {
        clusters,
        centroids,
        norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnMeta;

    #[test]
    fn separates_two_obvious_blobs() {
        // Two clusters: values near 0 and near 100.
        let col: Vec<f64> = (0..40)
            .map(|i| {
                if i < 20 {
                    i as f64 * 0.1
                } else {
                    100.0 + i as f64 * 0.1
                }
            })
            .collect();
        let cols = vec![col];
        let meta = vec![ColumnMeta::continuous("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..40).collect();
        let res = kmeans_two(&data, &rows, &[0], 42, 30).unwrap();
        assert_eq!(res.clusters[0].len() + res.clusters[1].len(), 40);
        // Each cluster should be pure.
        for cluster in &res.clusters {
            let low = cluster.iter().filter(|&&r| r < 20).count();
            assert!(low == 0 || low == cluster.len(), "mixed cluster");
        }
    }

    #[test]
    fn identical_points_cannot_split() {
        let cols = vec![vec![5.0; 10]];
        let meta = vec![ColumnMeta::discrete("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..10).collect();
        assert!(kmeans_two(&data, &rows, &[0], 1, 10).is_none());
    }

    #[test]
    fn handles_nulls_as_mean() {
        let cols = vec![vec![0.0, 0.1, f64::NAN, 10.0, 10.1, f64::NAN]];
        let meta = vec![ColumnMeta::continuous("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..6).collect();
        let res = kmeans_two(&data, &rows, &[0], 3, 20).unwrap();
        assert_eq!(res.clusters[0].len() + res.clusters[1].len(), 6);
    }

    #[test]
    fn too_few_rows() {
        let cols = vec![vec![1.0]];
        let meta = vec![ColumnMeta::discrete("x")];
        let data = DataView::new(&cols, &meta);
        assert!(kmeans_two(&data, &[0], &[0], 1, 10).is_none());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let col: Vec<f64> = (0..50)
            .map(|i| (i % 7) as f64 + if i % 2 == 0 { 50.0 } else { 0.0 })
            .collect();
        let cols = vec![col];
        let meta = vec![ColumnMeta::continuous("x")];
        let data = DataView::new(&cols, &meta);
        let rows: Vec<u32> = (0..50).collect();
        let a = kmeans_two(&data, &rows, &[0], 9, 25).unwrap();
        let b = kmeans_two(&data, &rows, &[0], 9, 25).unwrap();
        assert_eq!(a.clusters[0], b.clusters[0]);
        assert_eq!(a.centroids[1], b.centroids[1]);
    }
}
