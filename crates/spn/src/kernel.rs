//! Semiring sweep kernels: one tiling/scheduling skeleton, two semirings.
//!
//! The arena engine answers every production probe with the same forward
//! sweep — only the node arithmetic differs between expectation probes
//! ((+, ×), [`crate::BatchEvaluator`]) and max-product MPE probes
//! ((max, ×), [`crate::MaxProductEvaluator`]). This module factors that
//! sweep into a shared skeleton ([`SweepScratch::sweep`]) parameterized by
//! per-node-run kernel traits:
//!
//! * [`LeafKernel`] / [`SumKernel`] / [`ProductKernel`] — one method per
//!   [`CompiledKind`], dispatched once per *run* of consecutive same-kind
//!   nodes ([`CompiledSpn::node_runs`]) instead of once per node;
//! * [`Expectation`] and [`MaxProduct`] — the two semiring kernel sets;
//! * [`F64Lanes`] — a portable `f64x4`-style lane type for the SIMD inner
//!   kernels. Lanes are plain `[f64; LANES]` elementwise arithmetic in a
//!   fixed order, so LLVM auto-vectorizes them while every lane remains
//!   **bitwise identical** to the scalar path (no FMA contraction, no
//!   reassociation, zero-skips expressed as lanewise freezes).
//!
//! Scratch rows are node-major with a lane-padded stride: query `qi` of node
//! `n` lives at `values[n * stride + qi]`. Padding lanes `[n_q, stride)` are
//! written by the leaf kernels (the marginalized value `1.0`) so the SIMD
//! inner kernels read deterministic values; real query lanes never depend on
//! them — lane arithmetic is elementwise. The scratch is grow-only and never
//! re-zeroed on the hot path: every slot a sweep reads was written earlier
//! in the same sweep (children precede parents in the arena's topological
//! order).
//!
//! Sweeps can be **pruned** to a query-scoped [`ActiveSet`]: scratch rows of
//! subtrees outside the constrained columns' scope are seeded from the
//! arena's neutral tables (their empty-query values — bit-for-bit what the
//! full sweep would have written, because a marginalized leaf gathers the
//! literal `1.0` the [`LeafValueTable`] stores for `None` slots), and the
//! kernels then dispatch over the ActiveSet's compacted runs only. The
//! kernels themselves are untouched: pruning changes *which* rows they
//! visit, never the arithmetic, so pruned ≡ full holds **bitwise by
//! construction** (enforced by `tests/prop_prune.rs`). Batches narrower
//! than [`LANES`] route to the scalar kernels — same bitwise contract,
//! without paying lane padding for sub-lane batches.
//!
//! Determinism contract (enforced by `tests/prop_batch.rs` /
//! `tests/prop_mpe.rs`): for both semirings, SIMD ≡ scalar ≡ recursive
//! oracle **bitwise**, for every tile shape and thread count, including
//! arenas patched in place by updates.

use std::ops::Range;

use crate::arena::{ActiveSet, CompiledKind, CompiledSpn};
use crate::leaf::{LeafBatchScratch, NormPred};
use crate::maxprod::MpeProbe;
use crate::{LeafFunc, SpnQuery};

/// Queries per SIMD lane group. Lane arithmetic is elementwise `[f64; 4]`
/// in fixed order — auto-vectorizable, bitwise equal to scalar.
pub(crate) const LANES: usize = 4;

/// Sentinel leaf payload id: "no target leaf on this branch".
pub(crate) const NO_LEAF: u32 = u32::MAX;

/// `n` rounded up to a whole number of lanes.
#[inline]
pub(crate) fn lane_padded(n: usize) -> usize {
    n.div_ceil(LANES) * LANES
}

/// Portable `f64x4`-style lane vector. All ops are elementwise in lane
/// order; none reassociate or contract (mul-then-add, never FMA), so each
/// lane computes exactly the scalar sequence.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(32))]
pub(crate) struct F64Lanes(pub [f64; LANES]);

impl F64Lanes {
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; LANES])
    }

    #[inline(always)]
    pub fn load(src: &[f64]) -> Self {
        Self(src[..LANES].try_into().expect("lane load"))
    }

    #[inline(always)]
    pub fn store(self, dst: &mut [f64]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// `self + w * x`, lanewise, as a separate multiply then add — bitwise
    /// equal to the scalar sum-node accumulation (no FMA contraction).
    #[inline(always)]
    pub fn add_scaled(self, w: f64, x: Self) -> Self {
        let mut out = self.0;
        for (acc, &c) in out.iter_mut().zip(&x.0) {
            *acc += w * c;
        }
        Self(out)
    }

    /// Lanewise `if acc == 0.0 { acc } else { acc * x }` — the vector form
    /// of the scalar product-node zero-skip: once a lane hits ±0.0 it is
    /// frozen (keeping its sign), exactly as the scalar early `break` leaves
    /// it.
    #[inline(always)]
    pub fn mul_keep_zero(self, x: Self) -> Self {
        let mut out = self.0;
        for (acc, &c) in out.iter_mut().zip(&x.0) {
            if *acc != 0.0 {
                *acc *= c;
            }
        }
        Self(out)
    }

    /// Every lane is ±0.0 — the whole-vector analogue of the scalar early
    /// break (all lanes frozen, remaining children can be skipped).
    #[inline(always)]
    pub fn all_zero(self) -> bool {
        self.0.iter().all(|&v| v == 0.0)
    }
}

/// Compiled per-(query, column) leaf slot: moment function + normalized
/// predicate conjunction; `None` for marginalized columns.
pub(crate) type CompiledSlot = Option<(LeafFunc, NormPred)>;

/// Bits-level slot equality: equal slots make every leaf return bits-equal
/// values, so one evaluation can serve all sharers.
fn slot_bits_eq(a: &CompiledSlot, b: &CompiledSlot) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some((fa, na)), Some((fb, nb))) => fa == fb && na.bits_eq(nb),
        _ => false,
    }
}

/// Per-batch leaf-value table: every (leaf, **distinct** slot) pair is
/// evaluated exactly once, for the whole batch, before any tile sweeps.
///
/// This hoists the dominant sweep cost — [`crate::Leaf::expect_norm`] with
/// its binary searches / bin walks — out of the per-tile leaf kernels, which
/// degrade to pure gathers. Slots are deduplicated per column by float-bits
/// equality ([`slot_bits_eq`]), so the win compounds exactly where probe
/// plans fan out: GROUP BY / batched-MPE probe fans share every
/// non-grouped column's slot across **all** tiles of the batch, and a
/// column's marginalized (`None`) slots collapse to one entry. Memory is
/// one `f64` per (leaf, distinct slot) — proportional to the evaluation
/// work the table replaces, never more.
///
/// Values are the untouched `expect_norm` outputs, so every path that
/// consults the table (SIMD, scalar, pooled tiles) stays bitwise identical
/// to direct evaluation.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeafValueTable {
    n_cols: usize,
    /// `n_probes × n_cols` column-local distinct-slot ids, probe-major.
    slot_ids: Vec<u32>,
    /// Per leaf payload, offset of its value block in `vals`.
    offsets: Vec<u32>,
    /// Concatenated per-leaf values, one per distinct slot of the leaf's
    /// column.
    vals: Vec<f64>,
    /// Hoisted `n_probes × n_cols` compiled slots (build scratch).
    slots: Vec<CompiledSlot>,
    /// Per column, the probe index carrying the first occurrence of each
    /// distinct slot (build scratch).
    col_reps: Vec<Vec<u32>>,
    /// Scratch for [`crate::Leaf::expect_norm_batch`] — the batched
    /// prefix-sum probe walk over a column's distinct slots.
    batch_scratch: LeafBatchScratch,
}

impl LeafValueTable {
    /// Hoist + dedup + evaluate for one batch of probes against one arena.
    /// Reuses the table's allocations across builds.
    pub(crate) fn build<K: SemiringProbe>(&mut self, spn: &CompiledSpn, probes: &[K::Probe]) {
        let n_cols = spn.n_columns();
        let n_q = probes.len();
        self.n_cols = n_cols;

        // Hoist predicate normalization: once per (probe, column) per batch.
        // The recursive oracle re-normalizes at every leaf visit. Existing
        // compiled slots are re-assigned in place ([`NormPred::assign`]), so
        // a table rebuilt for the same probe layout — the steady state of a
        // prepared query — allocates nothing.
        self.slots.truncate(n_q * n_cols);
        let reusable = self.slots.len();
        let mut idx = 0;
        for p in probes {
            let q = K::query(p);
            for col in 0..n_cols {
                let src = q.slot(col);
                if idx < reusable {
                    let dst = &mut self.slots[idx];
                    match src {
                        None => *dst = None,
                        Some(s) => {
                            let func = s.func.unwrap_or(LeafFunc::One);
                            match dst {
                                Some((f, np)) => {
                                    *f = func;
                                    np.assign(&s.preds);
                                }
                                None => *dst = Some((func, NormPred::new(&s.preds))),
                            }
                        }
                    }
                } else {
                    self.slots.push(
                        src.map(|s| (s.func.unwrap_or(LeafFunc::One), NormPred::new(&s.preds))),
                    );
                }
                idx += 1;
            }
        }

        // Dedup bits-identical slots per column. The scan is linear in the
        // number of *distinct* slots, which real batches keep tiny (probe
        // fans differ on one or two columns); a fully-distinct batch costs
        // no more evaluations than the un-deduplicated path did.
        self.slot_ids.clear();
        self.slot_ids.resize(n_q * n_cols, 0);
        self.col_reps.iter_mut().for_each(Vec::clear);
        self.col_reps.resize_with(n_cols, Vec::new);
        for col in 0..n_cols {
            for qi in 0..n_q {
                let slot = &self.slots[qi * n_cols + col];
                let reps = &mut self.col_reps[col];
                let id = reps
                    .iter()
                    .position(|&r| slot_bits_eq(slot, &self.slots[r as usize * n_cols + col]))
                    .unwrap_or_else(|| {
                        reps.push(qi as u32);
                        reps.len() - 1
                    });
                self.slot_ids[qi * n_cols + col] = id as u32;
            }
        }

        // One evaluation per (leaf, distinct slot of the leaf's column).
        // When a column's distinct-slot fan is large relative to a leaf's
        // histogram, all of its prefix-sum probes are resolved by one
        // monotone merge walk ([`crate::Leaf::expect_norm_batch`], bitwise
        // identical to the per-slot path); otherwise slot by slot.
        self.offsets.clear();
        self.vals.clear();
        let slots = &self.slots;
        let col_reps = &self.col_reps;
        for (payload, leaf) in spn.leaves.iter().enumerate() {
            let col = spn.leaf_col[payload] as usize;
            self.offsets.push(self.vals.len() as u32);
            let fan = col_reps[col]
                .iter()
                .map(|&rq| slots[rq as usize * n_cols + col].as_ref());
            if leaf.expect_norm_batch(fan.clone(), &mut self.batch_scratch, &mut self.vals) {
                continue;
            }
            for slot in fan {
                self.vals.push(match slot {
                    None => 1.0,
                    Some((func, np)) => leaf.expect_norm(*func, np),
                });
            }
        }
    }

    /// The value of leaf `payload` under batch-global probe `probe`'s slot
    /// on `col` (the leaf's own column).
    #[inline(always)]
    pub(crate) fn value(&self, payload: usize, probe: usize, col: usize) -> f64 {
        self.vals
            [self.offsets[payload] as usize + self.slot_ids[probe * self.n_cols + col] as usize]
    }
}

/// Everything a kernel sees during one sweep over one chunk of probes.
pub(crate) struct SweepCtx<'a, P> {
    pub spn: &'a CompiledSpn,
    pub probes: &'a [P],
    /// Live queries in this chunk.
    pub n_q: usize,
    /// Row stride: `n_q` rounded up to a whole number of lanes.
    pub stride: usize,
    /// `n_nodes × stride` semiring values, node-major.
    pub values: &'a mut [f64],
    /// `n_nodes × stride` auxiliary lane (target-leaf payloads for the
    /// max-product semiring; empty otherwise).
    pub aux: &'a mut [u32],
    /// Batch-wide pre-evaluated leaf values (one per (leaf, distinct slot)).
    pub table: &'a LeafValueTable,
    /// Offset of this chunk's first probe within the batch the table was
    /// built for.
    pub base: usize,
}

/// Probe shape of a semiring: how to reach the query inside a probe and how
/// to validate a probe against a model.
pub(crate) trait SemiringProbe {
    type Probe;
    /// Whether the semiring carries the auxiliary `u32` lane.
    const TRACKS_LEAF: bool;
    fn query(p: &Self::Probe) -> &SpnQuery;
    fn check(p: &Self::Probe, n_cols: usize);
    /// The arena's per-node neutral (empty-query) values for this semiring —
    /// what a pruned sweep seeds inactive boundary rows with.
    fn neutral(spn: &CompiledSpn) -> &[f64];
}

/// Kernel for a run of consecutive leaf nodes.
pub(crate) trait LeafKernel: SemiringProbe {
    fn leaf_run(ctx: &mut SweepCtx<'_, Self::Probe>, run: Range<usize>, simd: bool);
}

/// Kernel for a run of consecutive sum nodes.
pub(crate) trait SumKernel: SemiringProbe {
    fn sum_run(ctx: &mut SweepCtx<'_, Self::Probe>, run: Range<usize>, simd: bool);
}

/// Kernel for a run of consecutive product nodes.
pub(crate) trait ProductKernel: SemiringProbe {
    fn product_run(ctx: &mut SweepCtx<'_, Self::Probe>, run: Range<usize>, simd: bool);
}

/// A complete semiring kernel set.
pub(crate) trait Kernels: LeafKernel + SumKernel + ProductKernel {}
impl<K: LeafKernel + SumKernel + ProductKernel> Kernels for K {}

/// The (+, ×) semiring: expectation probes ([`crate::BatchEvaluator`]).
pub(crate) struct Expectation;

/// The (max, ×) semiring with target-leaf backtraces: max-product MPE
/// probes ([`crate::MaxProductEvaluator`]).
pub(crate) struct MaxProduct;

impl SemiringProbe for Expectation {
    type Probe = SpnQuery;
    const TRACKS_LEAF: bool = false;

    #[inline]
    fn query(p: &SpnQuery) -> &SpnQuery {
        p
    }

    fn check(p: &SpnQuery, n_cols: usize) {
        assert_eq!(p.n_cols(), n_cols, "query arity mismatch");
    }

    #[inline]
    fn neutral(spn: &CompiledSpn) -> &[f64] {
        &spn.neutral_expect
    }
}

impl SemiringProbe for MaxProduct {
    type Probe = MpeProbe;
    const TRACKS_LEAF: bool = true;

    #[inline]
    fn query(p: &MpeProbe) -> &SpnQuery {
        &p.query
    }

    fn check(p: &MpeProbe, n_cols: usize) {
        assert_eq!(p.query.n_cols(), n_cols, "probe arity mismatch");
        assert!(p.target < n_cols, "MPE target column out of range");
    }

    #[inline]
    fn neutral(spn: &CompiledSpn) -> &[f64] {
        &spn.neutral_mpe
    }
}

impl LeafKernel for Expectation {
    fn leaf_run(ctx: &mut SweepCtx<'_, SpnQuery>, run: Range<usize>, simd: bool) {
        for node in run {
            let payload = ctx.spn.leaf_of[node] as usize;
            let col = ctx.spn.leaf_col[payload] as usize;
            let row = &mut ctx.values[node * ctx.stride..(node + 1) * ctx.stride];
            // Pure gather: the heavy per-(leaf, distinct slot) evaluation
            // already happened once per batch in the [`LeafValueTable`].
            for (qi, slot) in row[..ctx.n_q].iter_mut().enumerate() {
                *slot = ctx.table.value(payload, ctx.base + qi, col);
            }
            if simd {
                // Padding lanes take the marginalized value so downstream
                // lane reads are deterministic; they never feed a real lane.
                row[ctx.n_q..].fill(1.0);
            }
        }
    }
}

impl SumKernel for Expectation {
    fn sum_run(ctx: &mut SweepCtx<'_, SpnQuery>, run: Range<usize>, simd: bool) {
        for node in run {
            let (s, e) = ctx.spn.child_range(node);
            let children = &ctx.spn.children[s..e];
            let weights = &ctx.spn.weights[s..e];
            // Children precede parents, so this split puts every child row
            // in `read` and this node's row at the head of `write`.
            let (read, write) = ctx.values.split_at_mut(node * ctx.stride);
            if simd {
                for lane0 in (0..ctx.stride).step_by(LANES) {
                    let mut acc = F64Lanes::splat(0.0);
                    for (&child, &w) in children.iter().zip(weights) {
                        if w == 0.0 {
                            continue;
                        }
                        let c = F64Lanes::load(&read[child as usize * ctx.stride + lane0..]);
                        acc = acc.add_scaled(w, c);
                    }
                    acc.store(&mut write[lane0..]);
                }
            } else {
                for (qi, slot) in write[..ctx.n_q].iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (&child, &w) in children.iter().zip(weights) {
                        if w == 0.0 {
                            continue;
                        }
                        acc += w * read[child as usize * ctx.stride + qi];
                    }
                    *slot = acc;
                }
            }
        }
    }
}

impl ProductKernel for Expectation {
    fn product_run(ctx: &mut SweepCtx<'_, SpnQuery>, run: Range<usize>, simd: bool) {
        for node in run {
            let (s, e) = ctx.spn.child_range(node);
            let children = &ctx.spn.children[s..e];
            let (read, write) = ctx.values.split_at_mut(node * ctx.stride);
            if simd {
                for lane0 in (0..ctx.stride).step_by(LANES) {
                    let mut acc = F64Lanes::splat(1.0);
                    for &child in children {
                        let c = F64Lanes::load(&read[child as usize * ctx.stride + lane0..]);
                        acc = acc.mul_keep_zero(c);
                        if acc.all_zero() {
                            break;
                        }
                    }
                    acc.store(&mut write[lane0..]);
                }
            } else {
                for (qi, slot) in write[..ctx.n_q].iter_mut().enumerate() {
                    let mut acc = 1.0;
                    for &child in children {
                        acc *= read[child as usize * ctx.stride + qi];
                        if acc == 0.0 {
                            break;
                        }
                    }
                    *slot = acc;
                }
            }
        }
    }
}

impl LeafKernel for MaxProduct {
    fn leaf_run(ctx: &mut SweepCtx<'_, MpeProbe>, run: Range<usize>, simd: bool) {
        for node in run {
            let payload = ctx.spn.leaf_of[node] as usize;
            let col = ctx.spn.leaf_col[payload] as usize;
            let row = node * ctx.stride;
            let scores = &mut ctx.values[row..row + ctx.stride];
            let leaves = &mut ctx.aux[row..row + ctx.stride];
            for (qi, probe) in ctx.probes.iter().enumerate() {
                if probe.target == col {
                    // Target leaves contribute score 1 and resolve the
                    // branch's value, exactly like the oracle.
                    scores[qi] = 1.0;
                    leaves[qi] = payload as u32;
                } else {
                    scores[qi] = ctx.table.value(payload, ctx.base + qi, col);
                    leaves[qi] = NO_LEAF;
                }
            }
            if simd {
                scores[ctx.n_q..].fill(1.0);
                leaves[ctx.n_q..].fill(NO_LEAF);
            }
        }
    }
}

impl SumKernel for MaxProduct {
    fn sum_run(ctx: &mut SweepCtx<'_, MpeProbe>, run: Range<usize>, simd: bool) {
        // The argmax recurrence is compare/select per lane; with the lane
        // count fixed at compile time LLVM vectorizes the chunked form, and
        // both forms run the identical per-lane comparison sequence.
        let span = if simd { ctx.stride } else { ctx.n_q };
        for node in run {
            let (s, e) = ctx.spn.child_range(node);
            let children = &ctx.spn.children[s..e];
            let weights = &ctx.spn.weights[s..e];
            let row = node * ctx.stride;
            let (read_s, write_s) = ctx.values.split_at_mut(row);
            let (read_l, write_l) = ctx.aux.split_at_mut(row);
            for lane0 in (0..span).step_by(LANES) {
                let width = LANES.min(span - lane0);
                let mut found = [false; LANES];
                let mut best_score = [0.0f64; LANES];
                let mut best = [NO_LEAF; LANES];
                for (&child, &w) in children.iter().zip(weights) {
                    if w == 0.0 {
                        continue;
                    }
                    let crow = child as usize * ctx.stride + lane0;
                    for l in 0..width {
                        // Lowest-index child wins ties: only a strictly
                        // higher weighted score replaces the incumbent.
                        let weighted = w * read_s[crow + l];
                        if !found[l] || weighted > best_score[l] {
                            found[l] = true;
                            best_score[l] = weighted;
                            best[l] = read_l[crow + l];
                        }
                    }
                }
                write_s[lane0..lane0 + width].copy_from_slice(&best_score[..width]);
                write_l[lane0..lane0 + width].copy_from_slice(&best[..width]);
            }
        }
    }
}

impl ProductKernel for MaxProduct {
    fn product_run(ctx: &mut SweepCtx<'_, MpeProbe>, run: Range<usize>, simd: bool) {
        let span = if simd { ctx.stride } else { ctx.n_q };
        for node in run {
            let (s, e) = ctx.spn.child_range(node);
            let children = &ctx.spn.children[s..e];
            let row = node * ctx.stride;
            let (read_s, write_s) = ctx.values.split_at_mut(row);
            let (read_l, write_l) = ctx.aux.split_at_mut(row);
            for lane0 in (0..span).step_by(LANES) {
                let width = LANES.min(span - lane0);
                let mut acc = [1.0f64; LANES];
                let mut leaf = [NO_LEAF; LANES];
                for &child in children {
                    let crow = child as usize * ctx.stride + lane0;
                    for l in 0..width {
                        // No zero-break here: the first child holding a
                        // target leaf resolves the branch value regardless
                        // of where zeros appear, matching the oracle.
                        acc[l] *= read_s[crow + l];
                        if leaf[l] == NO_LEAF {
                            leaf[l] = read_l[crow + l];
                        }
                    }
                }
                write_s[lane0..lane0 + width].copy_from_slice(&acc[..width]);
                write_l[lane0..lane0 + width].copy_from_slice(&leaf[..width]);
            }
        }
    }
}

/// Reusable scratch + the shared sweep skeleton both semirings run on.
///
/// The scratch is grow-only: buffers are enlarged when a bigger
/// (model × chunk) arrives and otherwise left untouched — the sweep never
/// re-zeroes them, because the arena's topological order guarantees every
/// slot is written before it is read within one sweep.
#[derive(Debug, Clone, Default)]
pub(crate) struct SweepScratch {
    /// `n_nodes × stride` semiring values, node-major.
    values: Vec<f64>,
    /// `n_nodes × stride` auxiliary lane (max-product target leaves).
    aux: Vec<u32>,
    /// Offset of the root row of the most recent sweep.
    root: usize,
    /// Live queries in the most recent sweep.
    n_out: usize,
}

impl SweepScratch {
    /// One forward sweep of one chunk of `probes` over `spn` in semiring
    /// `K`, scalar or SIMD, gathering leaf values from a batch-wide
    /// [`LeafValueTable`] (`base` is the chunk's offset within the batch
    /// the table was built for). With an [`ActiveSet`], only its compacted
    /// runs are swept after seeding the boundary rows from the arena's
    /// neutral table — bitwise identical to the full sweep by construction.
    /// Results land in the root row ([`SweepScratch::root_values`] /
    /// [`SweepScratch::root_aux`]). Does **not** bump the model's sweep
    /// counter — callers account for fused sweeps.
    pub(crate) fn sweep<K: Kernels>(
        &mut self,
        spn: &CompiledSpn,
        probes: &[K::Probe],
        table: &LeafValueTable,
        base: usize,
        simd: bool,
        active: Option<&ActiveSet>,
    ) {
        let n_q = probes.len();
        debug_assert!(n_q > 0, "empty chunks are handled by callers");
        let n_cols = spn.n_columns();
        for p in probes {
            K::check(p, n_cols);
        }
        // Sub-lane batches route to the scalar kernels: padding a 1-query
        // chunk to a whole lane group does 4× the work for the same bits
        // (scalar ≡ SIMD is contractual).
        let simd = simd && n_q >= LANES;

        let n_nodes = spn.n_nodes();
        let stride = lane_padded(n_q);
        let need = n_nodes * stride;
        if self.values.len() < need {
            self.values.resize(need, 0.0);
        }
        let aux_need = if K::TRACKS_LEAF { need } else { 0 };
        if self.aux.len() < aux_need {
            self.aux.resize(aux_need, NO_LEAF);
        }

        let mut ctx = SweepCtx {
            spn,
            probes,
            n_q,
            stride,
            values: &mut self.values[..need],
            aux: &mut self.aux[..aux_need],
            table,
            base,
        };

        // Pruned path: seed the boundary rows with their query-independent
        // values (whole stride, padding included, so lane reads stay
        // deterministic), then dispatch only the compacted active runs.
        // Scratch keeps full node-id addressing, so the kernels' child-row
        // split (`children < node`) is untouched.
        let runs = match active {
            Some(a) => {
                debug_assert_eq!(
                    a.n_nodes as usize, n_nodes,
                    "active set built for a different arena"
                );
                let neutral = K::neutral(spn);
                for &s in a.seeds() {
                    let row = s as usize * ctx.stride;
                    ctx.values[row..row + ctx.stride].fill(neutral[s as usize]);
                    if K::TRACKS_LEAF {
                        // A pruned subtree never holds a target leaf (the
                        // target column is always active), so the aux lane is
                        // constantly "no leaf on this branch".
                        ctx.aux[row..row + ctx.stride].fill(NO_LEAF);
                    }
                }
                a.runs()
            }
            None => spn.node_runs(),
        };

        // Single forward sweep, one kernel call per same-kind node run.
        let mut nodes = 0u64;
        for run in runs {
            let range = run.start as usize..run.end as usize;
            nodes += (run.end - run.start) as u64;
            match run.kind {
                CompiledKind::Leaf => K::leaf_run(&mut ctx, range, simd),
                CompiledKind::Sum => K::sum_run(&mut ctx, range, simd),
                CompiledKind::Product => K::product_run(&mut ctx, range, simd),
            }
        }
        spn.note_nodes(nodes);

        self.root = (n_nodes - 1) * stride;
        self.n_out = n_q;
    }

    /// Root-row semiring values of the most recent sweep, one per probe.
    pub(crate) fn root_values(&self) -> &[f64] {
        &self.values[self.root..self.root + self.n_out]
    }

    /// Root-row auxiliary lane of the most recent sweep (max-product target
    /// leaves), one per probe.
    pub(crate) fn root_aux(&self) -> &[u32] {
        &self.aux[self.root..self.root + self.n_out]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_padding_rounds_up() {
        assert_eq!(lane_padded(0), 0);
        assert_eq!(lane_padded(1), LANES);
        assert_eq!(lane_padded(LANES), LANES);
        assert_eq!(lane_padded(LANES + 1), 2 * LANES);
        assert_eq!(lane_padded(32), 32);
        assert_eq!(lane_padded(33), 36);
    }

    #[test]
    fn mul_keep_zero_freezes_signed_zero_lanes() {
        let acc = F64Lanes([0.0, -0.0, 2.0, f64::NAN]);
        let x = F64Lanes([f64::NAN, 5.0, 3.0, 2.0]);
        let out = acc.mul_keep_zero(x);
        // ±0.0 lanes freeze (sign preserved), live lanes multiply — even
        // into NaN, exactly like the scalar loop.
        assert_eq!(out.0[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(out.0[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(out.0[2], 6.0);
        assert!(out.0[3].is_nan());
        assert!(!out.all_zero());
        assert!(F64Lanes([0.0, -0.0, 0.0, 0.0]).all_zero());
    }

    #[test]
    fn add_scaled_is_mul_then_add() {
        let acc = F64Lanes::splat(0.1);
        let x = F64Lanes([1.0, 2.0, 3.0, 4.0]);
        let out = acc.add_scaled(0.3, x);
        for (l, &got) in out.0.iter().enumerate() {
            let want = 0.1 + 0.3 * (l + 1) as f64;
            assert_eq!(got.to_bits(), want.to_bits(), "lane {l}");
        }
    }
}
