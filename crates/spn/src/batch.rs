//! Batched evaluation over the arena-compiled SPN.
//!
//! Cardinality estimation compiles one SQL query into *many* expectation
//! probes per ensemble member (count fraction, squared-moment, probability,
//! confidence-interval and GROUP BY probes). [`BatchEvaluator`] answers a
//! whole slice of [`SpnQuery`]s in a single forward sweep over the arena
//! arrays:
//!
//! * one `values` scratch buffer of `n_nodes × n_queries` partial results —
//!   node-major, so each node's row is written sequentially (large batches
//!   are processed in fixed-size query tiles, keeping the scratch
//!   cache-resident and memory bounded);
//! * per-query predicate normalization ([`NormPred`]) hoisted out of the
//!   leaf loop: the recursive evaluator re-normalizes at every leaf visit,
//!   here it happens once per (query, column) and is shared by every leaf on
//!   that column;
//! * leaves evaluate all query slots back-to-back ("vectorized per query
//!   slot"), then inner nodes combine child rows with the exact arithmetic
//!   of the recursive oracle (same order, same zero-skips), so results are
//!   identical, not approximately equal.
//!
//! The evaluator owns only scratch; it can be reused across arbitrary
//! [`CompiledSpn`]s and never allocates at steady state.
//!
//! On top of the single-model path, [`sweep_models`] executes one fused
//! sweep per model with the tiles of *all* models load-balanced across a
//! scoped worker pool: query slots never interact (each query reads only its
//! own column slots and its own scratch row), so results are bitwise
//! identical to the sequential path for any thread count. This is the engine
//! behind `deepdb-core`'s probe plans, which collect every probe of a SQL
//! query per RSPN member and then sweep each touched member exactly once.

use std::sync::Mutex;

use crate::arena::{CompiledKind, CompiledSpn};
use crate::leaf::NormPred;
use crate::maxprod::{MaxProductEvaluator, MpeOutcome, MpeProbe};
use crate::{LeafFunc, SpnQuery};

/// Queries evaluated per tile of a sweep. Bounds the scratch to
/// `n_nodes × SWEEP_TILE` doubles (L2-resident for realistic models) no
/// matter how large the batch is; tiles are independent — every query slot
/// reads only its own normalized slots and writes only its own scratch
/// column — so tiling (and tile-parallel execution) never changes results.
pub const SWEEP_TILE: usize = 32;

/// Reusable scratch for batched arena evaluation.
#[derive(Debug, Clone, Default)]
pub struct BatchEvaluator {
    /// `n_nodes × tile` partial expectations, node-major.
    values: Vec<f64>,
    /// `tile × n_cols` compiled slots: moment function + normalized
    /// predicate conjunction, `None` for marginalized columns.
    slots: Vec<Option<(LeafFunc, NormPred)>>,
}

impl BatchEvaluator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate every query against `spn`, returning one expectation per
    /// query (same order). Counts as one fused sweep.
    pub fn evaluate(&mut self, spn: &CompiledSpn, queries: &[SpnQuery]) -> Vec<f64> {
        let mut out = Vec::new();
        self.evaluate_into(spn, queries, &mut out);
        out
    }

    /// Like [`BatchEvaluator::evaluate`] but into a caller-owned buffer
    /// (cleared first), for allocation-free steady state. Counts as one
    /// fused sweep.
    pub fn evaluate_into(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut Vec<f64>) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        spn.note_sweep();
        out.resize(queries.len(), 0.0);
        for (tile, dst) in queries.chunks(SWEEP_TILE).zip(out.chunks_mut(SWEEP_TILE)) {
            self.evaluate_chunk(spn, tile, dst);
        }
    }

    /// One forward sweep over the arena for a single chunk of queries,
    /// writing one expectation per query into `out` (same order). Does
    /// **not** bump the model's sweep counter — callers orchestrating a
    /// larger fused sweep ([`sweep_models`]) account for it once per model.
    /// Chunks at or below [`SWEEP_TILE`] queries keep the scratch
    /// cache-resident; larger chunks work but grow it.
    pub fn evaluate_chunk(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut [f64]) {
        let n_q = queries.len();
        assert_eq!(n_q, out.len(), "output slice arity mismatch");
        if n_q == 0 {
            return;
        }
        let n_cols = spn.n_columns();
        for q in queries {
            assert_eq!(q.n_cols(), n_cols, "query arity mismatch");
        }

        // Hoist predicate normalization: once per (query, column).
        self.slots.clear();
        self.slots.reserve(n_q * n_cols);
        for q in queries {
            for col in 0..n_cols {
                self.slots.push(
                    q.slot(col)
                        .map(|s| (s.func.unwrap_or(LeafFunc::One), NormPred::new(&s.preds))),
                );
            }
        }

        let n_nodes = spn.n_nodes();
        self.values.clear();
        self.values.resize(n_nodes * n_q, 0.0);

        // Single forward sweep: children always precede parents.
        for node in 0..n_nodes {
            let row = node * n_q;
            match spn.kinds[node] {
                CompiledKind::Leaf => {
                    let payload = spn.leaf_of[node] as usize;
                    let leaf = &spn.leaves[payload];
                    let col = spn.leaf_col[payload] as usize;
                    for qi in 0..n_q {
                        self.values[row + qi] = match &self.slots[qi * n_cols + col] {
                            None => 1.0,
                            Some((func, np)) => leaf.expect_norm(*func, np),
                        };
                    }
                }
                CompiledKind::Product => {
                    let (s, e) = (spn.child_start[node] as usize, spn.child_end[node] as usize);
                    for qi in 0..n_q {
                        let mut acc = 1.0;
                        for &child in &spn.children[s..e] {
                            acc *= self.values[child as usize * n_q + qi];
                            if acc == 0.0 {
                                break;
                            }
                        }
                        self.values[row + qi] = acc;
                    }
                }
                CompiledKind::Sum => {
                    let (s, e) = (spn.child_start[node] as usize, spn.child_end[node] as usize);
                    for qi in 0..n_q {
                        let mut acc = 0.0;
                        for (k, &child) in spn.children[s..e].iter().enumerate() {
                            let w = spn.weights[s + k];
                            if w == 0.0 {
                                continue;
                            }
                            acc += w * self.values[child as usize * n_q + qi];
                        }
                        self.values[row + qi] = acc;
                    }
                }
            }
        }

        out.copy_from_slice(&self.values[(n_nodes - 1) * n_q..]);
    }
}

/// One model's share of a fused multi-model sweep: an expectation-probe
/// batch **and** a max-product probe batch against one compiled arena, each
/// with a caller-owned output slice of the same length. Both batches belong
/// to the same logical sweep — the model's sweep counter advances once per
/// job, no matter which probe kinds it carries.
pub struct SweepJob<'a> {
    pub spn: &'a CompiledSpn,
    pub queries: &'a [SpnQuery],
    pub out: &'a mut [f64],
    /// Max-product probes riding the same sweep (classification / MPE).
    pub mpe: &'a [MpeProbe],
    pub mpe_out: &'a mut [MpeOutcome],
}

impl<'a> SweepJob<'a> {
    /// Expectation-only job (the common AQP/cardinality shape).
    pub fn expect(spn: &'a CompiledSpn, queries: &'a [SpnQuery], out: &'a mut [f64]) -> Self {
        Self {
            spn,
            queries,
            out,
            mpe: &[],
            mpe_out: &mut [],
        }
    }
}

/// A unit of worker work: one tile of one probe kind against one model.
enum Tile<'a> {
    Expect(&'a CompiledSpn, &'a [SpnQuery], &'a mut [f64]),
    Mpe(&'a CompiledSpn, &'a [MpeProbe], &'a mut [MpeOutcome]),
}

/// Per-worker scratch: one evaluator per probe kind, reused across tiles.
#[derive(Default)]
struct WorkerScratch {
    expect: BatchEvaluator,
    maxprod: MaxProductEvaluator,
}

impl WorkerScratch {
    fn run(&mut self, tile: Tile<'_>) {
        match tile {
            Tile::Expect(spn, queries, out) => self.expect.evaluate_chunk(spn, queries, out),
            Tile::Mpe(spn, probes, out) => self.maxprod.evaluate_chunk(spn, probes, out),
        }
    }
}

/// Execute one fused sweep per job, with the [`SWEEP_TILE`]-sized tiles of
/// **all** jobs load-balanced across up to `threads` scoped worker threads
/// (`std::thread::scope`; no pool retained between calls). Each worker owns
/// its own [`BatchEvaluator`] scratch, so evaluation only needs `&CompiledSpn`.
///
/// Results are bitwise identical for every thread count (including the
/// inline `threads <= 1` path): a query's value depends only on its own
/// normalized slots and its own scratch column, never on tile-mates or
/// scheduling order, and each tile writes a disjoint output range.
pub fn sweep_models(jobs: Vec<SweepJob<'_>>, threads: usize) {
    // Split every job into independent per-kind tiles.
    let mut tiles: Vec<Tile<'_>> = Vec::new();
    for job in jobs {
        let SweepJob {
            spn,
            mut queries,
            mut out,
            mut mpe,
            mut mpe_out,
        } = job;
        assert_eq!(queries.len(), out.len(), "sweep job arity mismatch");
        assert_eq!(mpe.len(), mpe_out.len(), "sweep job MPE arity mismatch");
        if queries.is_empty() && mpe.is_empty() {
            continue;
        }
        // Both probe kinds of one job are one fused sweep of the model.
        spn.note_sweep();
        while !queries.is_empty() {
            let k = queries.len().min(SWEEP_TILE);
            let (q_head, q_tail) = queries.split_at(k);
            let (o_head, o_tail) = std::mem::take(&mut out).split_at_mut(k);
            tiles.push(Tile::Expect(spn, q_head, o_head));
            queries = q_tail;
            out = o_tail;
        }
        while !mpe.is_empty() {
            let k = mpe.len().min(SWEEP_TILE);
            let (p_head, p_tail) = mpe.split_at(k);
            let (o_head, o_tail) = std::mem::take(&mut mpe_out).split_at_mut(k);
            tiles.push(Tile::Mpe(spn, p_head, o_head));
            mpe = p_tail;
            mpe_out = o_tail;
        }
    }

    let workers = threads.max(1).min(tiles.len());
    if workers <= 1 {
        let mut scratch = WorkerScratch::default();
        for tile in tiles {
            scratch.run(tile);
        }
        return;
    }

    // Work-stealing over the tile list: tiles are coarse (SWEEP_TILE queries
    // × whole arena), so a Mutex'd stack is contention-free in practice.
    let queue = Mutex::new(tiles);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut scratch = WorkerScratch::default();
                loop {
                    let tile = queue.lock().expect("sweep queue poisoned").pop();
                    match tile {
                        Some(tile) => scratch.run(tile),
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, DataView, LeafPred, Spn, SpnParams};

    fn small_spn() -> Spn {
        let cols = vec![
            vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, f64::NAN],
            vec![10.0, 20.0, 30.0, 30.0, 40.0, 10.0, 20.0, 30.0],
        ];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        Spn::learn(DataView::new(&cols, &meta), &SpnParams::default())
    }

    fn probe_mix() -> Vec<SpnQuery> {
        vec![
            SpnQuery::new(2),
            SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)),
            SpnQuery::new(2).with_pred(0, LeafPred::IsNull),
            SpnQuery::new(2)
                .with_pred(1, LeafPred::ge(30.0))
                .with_func(1, LeafFunc::X),
            SpnQuery::new(2).with_func(0, LeafFunc::InvClamp1),
        ]
    }

    #[test]
    fn batch_matches_sequential_single_queries() {
        let mut spn = small_spn();
        let compiled = spn.compile();
        let queries = probe_mix();
        let mut ev = BatchEvaluator::new();
        let batch = ev.evaluate(&compiled, &queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = spn.evaluate(q);
            assert!(
                (batch[i] - single).abs() < 1e-12,
                "query {i}: batch {} vs recursive {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn evaluator_scratch_is_reusable_across_models() {
        let spn_a = small_spn();
        let cols = vec![vec![5.0, 6.0, 7.0, 5.0], vec![1.0, 1.0, 2.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("x"), ColumnMeta::discrete("y")];
        let spn_b = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let (ca, cb) = (spn_a.compile(), spn_b.compile());
        let mut ev = BatchEvaluator::new();
        let qa = vec![SpnQuery::new(2)];
        let qb = vec![SpnQuery::new(2).with_pred(0, LeafPred::eq(5.0))];
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
        assert!((ev.evaluate(&cb, &qb)[0] - 0.5).abs() < 1e-12);
        // And back again.
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_empty() {
        let spn = small_spn();
        let compiled = spn.compile();
        let mut ev = BatchEvaluator::new();
        assert!(ev.evaluate(&compiled, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let spn = small_spn();
        let compiled = spn.compile();
        BatchEvaluator::new().evaluate(&compiled, &[SpnQuery::new(3)]);
    }

    #[test]
    fn sweep_models_matches_sequential_bitwise_any_thread_count() {
        let spn_a = small_spn();
        let cols = vec![vec![5.0, 6.0, 7.0, 5.0], vec![1.0, 1.0, 2.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("x"), ColumnMeta::discrete("y")];
        let spn_b = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let (ca, cb) = (spn_a.compile(), spn_b.compile());

        // Batches larger than one tile so the parallel path actually splits.
        let base = probe_mix();
        let qa: Vec<SpnQuery> = (0..100).map(|i| base[i % base.len()].clone()).collect();
        let qb: Vec<SpnQuery> = (0..67)
            .map(|i| SpnQuery::new(2).with_pred(0, LeafPred::eq(5.0 + (i % 3) as f64)))
            .collect();

        let mut ev = BatchEvaluator::new();
        let want_a = ev.evaluate(&ca, &qa);
        let want_b = ev.evaluate(&cb, &qb);

        for threads in [1, 2, 4, 7] {
            let mut got_a = vec![0.0; qa.len()];
            let mut got_b = vec![0.0; qb.len()];
            sweep_models(
                vec![
                    SweepJob::expect(&ca, &qa, &mut got_a),
                    SweepJob::expect(&cb, &qb, &mut got_b),
                ],
                threads,
            );
            assert_eq!(got_a, want_a, "model a, {threads} threads");
            assert_eq!(got_b, want_b, "model b, {threads} threads");
        }
    }

    #[test]
    fn sweep_counting_is_per_model_per_batch() {
        let spn = small_spn();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..80).map(|_| SpnQuery::new(2)).collect();
        let before = compiled.sweep_count();
        // One evaluate call = one sweep, regardless of tile count.
        BatchEvaluator::new().evaluate(&compiled, &queries);
        assert_eq!(compiled.sweep_count(), before + 1);
        // One sweep_models job = one sweep, even multi-threaded.
        let mut out = vec![0.0; queries.len()];
        sweep_models(vec![SweepJob::expect(&compiled, &queries, &mut out)], 4);
        assert_eq!(compiled.sweep_count(), before + 2);
        // Empty jobs don't count.
        sweep_models(vec![SweepJob::expect(&compiled, &[], &mut [])], 2);
        assert_eq!(compiled.sweep_count(), before + 2);
        // A job carrying both probe kinds still counts as ONE sweep.
        let probes: Vec<MpeProbe> = (0..40)
            .map(|i| MpeProbe::new(0, SpnQuery::new(2).with_pred(1, LeafPred::ge(i as f64))))
            .collect();
        let mut mpe_out = vec![MpeOutcome::default(); probes.len()];
        sweep_models(
            vec![SweepJob {
                spn: &compiled,
                queries: &queries,
                out: &mut out,
                mpe: &probes,
                mpe_out: &mut mpe_out,
            }],
            4,
        );
        assert_eq!(compiled.sweep_count(), before + 3);
    }

    #[test]
    fn mixed_sweep_matches_dedicated_evaluators_any_thread_count() {
        let mut spn = small_spn();
        let compiled = spn.compile();
        let queries = probe_mix();
        let probes: Vec<MpeProbe> = (0..70)
            .map(|i| {
                MpeProbe::new(
                    i % 2,
                    SpnQuery::new(2).with_pred(1 - i % 2, LeafPred::ge((i % 4) as f64 * 10.0)),
                )
            })
            .collect();
        let want_q = BatchEvaluator::new().evaluate(&compiled, &queries);
        let want_p = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        // And both must equal the recursive oracle.
        for (p, w) in probes.iter().zip(&want_p) {
            let (score, value) = spn.mpe_outcome(p.target, &p.query);
            assert_eq!(w.value, value);
            assert_eq!(w.score.to_bits(), score.to_bits());
        }
        for threads in [1, 2, 4] {
            let mut got_q = vec![0.0; queries.len()];
            let mut got_p = vec![MpeOutcome::default(); probes.len()];
            sweep_models(
                vec![SweepJob {
                    spn: &compiled,
                    queries: &queries,
                    out: &mut got_q,
                    mpe: &probes,
                    mpe_out: &mut got_p,
                }],
                threads,
            );
            assert_eq!(got_q, want_q, "{threads} threads");
            assert_eq!(got_p, want_p, "{threads} threads");
        }
    }
}
