//! Batched expectation evaluation over the arena-compiled SPN.
//!
//! Cardinality estimation compiles one SQL query into *many* expectation
//! probes per ensemble member (count fraction, squared-moment, probability,
//! confidence-interval and GROUP BY probes). [`BatchEvaluator`] answers a
//! whole slice of [`SpnQuery`]s in a single forward sweep over the arena
//! arrays, running the (+, ×) kernels of the shared semiring skeleton in
//! [`crate::kernel`]:
//!
//! * one node-major scratch buffer of partial results (large batches are
//!   processed in fixed-size query tiles, keeping the scratch
//!   cache-resident and memory bounded); the scratch is grow-only — it is
//!   **never re-zeroed** on the hot path, since every slot is written
//!   before it is read within a sweep;
//! * leaf evaluation hoisted to a per-batch
//!   [`crate::kernel::LeafValueTable`]: predicate normalization runs once
//!   per (query, column), slots are deduplicated per column by float-bits
//!   equality, and every (leaf, distinct slot) pair is evaluated exactly
//!   once for the whole batch — the per-tile leaf kernels are pure gathers;
//! * the SIMD inner-node kernels combine child rows four query lanes at a
//!   time, one kernel call per run of consecutive same-kind nodes — with
//!   the exact arithmetic of
//!   the recursive oracle (same order, same zero-skips, no FMA
//!   contraction), so results are **bitwise identical**, not approximately
//!   equal. [`BatchEvaluator::evaluate_scalar`] keeps the scalar reference
//!   path alive for differential tests and benches.
//!
//! The evaluator owns only scratch; it can be reused across arbitrary
//! [`CompiledSpn`]s and never allocates at steady state.
//!
//! Multi-model fused sweeps (the engine behind `deepdb-core`'s probe plans)
//! live in [`crate::pool`]: [`crate::sweep_models`] load-balances the tiles
//! of all models across a persistent worker pool, bitwise identical to the
//! sequential path for any thread count.

use crate::arena::{ActiveSet, CompiledSpn};
use crate::kernel::{Expectation, LeafValueTable, SweepScratch};
use crate::SpnQuery;

/// Queries evaluated per tile of a sweep. Bounds the scratch to
/// `n_nodes × SWEEP_TILE` doubles (L2-resident for realistic models) no
/// matter how large the batch is; tiles are independent — every query slot
/// reads only its own normalized slots and its own scratch column — so
/// tiling (and tile-parallel execution) never changes results.
pub const SWEEP_TILE: usize = 32;

/// Reusable scratch for batched arena evaluation.
#[derive(Debug, Clone, Default)]
pub struct BatchEvaluator {
    scratch: SweepScratch,
    /// Per-batch (leaf × distinct slot) value table for self-contained
    /// evaluations; pooled sweeps pass a job-wide table in instead.
    table: LeafValueTable,
}

impl BatchEvaluator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate every query against `spn`, returning one expectation per
    /// query (same order). Counts as one fused sweep.
    pub fn evaluate(&mut self, spn: &CompiledSpn, queries: &[SpnQuery]) -> Vec<f64> {
        let mut out = Vec::new();
        self.evaluate_into(spn, queries, &mut out);
        out
    }

    /// Like [`BatchEvaluator::evaluate`] but into a caller-owned buffer
    /// (cleared first), for allocation-free steady state. Counts as one
    /// fused sweep.
    pub fn evaluate_into(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut Vec<f64>) {
        self.evaluate_into_impl(spn, queries, out, true, None);
    }

    /// Scalar-kernel twin of [`BatchEvaluator::evaluate`]: the reference
    /// path the SIMD kernels are differentially tested against (results are
    /// bitwise identical). Counts as one fused sweep.
    pub fn evaluate_scalar(&mut self, spn: &CompiledSpn, queries: &[SpnQuery]) -> Vec<f64> {
        let mut out = Vec::new();
        self.evaluate_into_impl(spn, queries, &mut out, false, None);
        out
    }

    /// Pruned twin of [`BatchEvaluator::evaluate`]: sweeps only `active`'s
    /// compacted runs, seeding pruned-out boundary rows from the arena's
    /// neutral table. Bitwise identical to the full sweep whenever `active`
    /// covers the union of the batch's constrained columns (see
    /// [`CompiledSpn::active_set`]). Counts as one fused sweep.
    pub fn evaluate_pruned(
        &mut self,
        spn: &CompiledSpn,
        queries: &[SpnQuery],
        active: &ActiveSet,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.evaluate_into_impl(spn, queries, &mut out, true, Some(active));
        out
    }

    fn evaluate_into_impl(
        &mut self,
        spn: &CompiledSpn,
        queries: &[SpnQuery],
        out: &mut Vec<f64>,
        simd: bool,
        active: Option<&ActiveSet>,
    ) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        spn.note_sweep();
        out.resize(queries.len(), 0.0);
        // Leaf values are evaluated once per (leaf, distinct slot) for the
        // WHOLE batch; the per-tile sweeps below only gather from the table.
        self.table.build::<Expectation>(spn, queries);
        let mut base = 0;
        for (tile, dst) in queries.chunks(SWEEP_TILE).zip(out.chunks_mut(SWEEP_TILE)) {
            chunk(
                &mut self.scratch,
                &self.table,
                spn,
                tile,
                base,
                dst,
                simd,
                active,
            );
            base += tile.len();
        }
    }

    /// One forward sweep over the arena for a single chunk of queries,
    /// writing one expectation per query into `out` (same order). Does
    /// **not** bump the model's sweep counter — callers orchestrating a
    /// larger fused sweep ([`crate::sweep_models`]) account for it once per
    /// model. Chunks at or below [`SWEEP_TILE`] queries keep the scratch
    /// cache-resident; larger chunks work but grow it.
    pub fn evaluate_chunk(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut [f64]) {
        self.table.build::<Expectation>(spn, queries);
        chunk(
            &mut self.scratch,
            &self.table,
            spn,
            queries,
            0,
            out,
            true,
            None,
        );
    }

    /// Scalar-kernel twin of [`BatchEvaluator::evaluate_chunk`].
    pub fn evaluate_chunk_scalar(
        &mut self,
        spn: &CompiledSpn,
        queries: &[SpnQuery],
        out: &mut [f64],
    ) {
        self.table.build::<Expectation>(spn, queries);
        chunk(
            &mut self.scratch,
            &self.table,
            spn,
            queries,
            0,
            out,
            false,
            None,
        );
    }

    /// Pooled-tile entry: sweep one tile against a **job-wide** leaf-value
    /// table built by the submitter (`base` = the tile's offset within the
    /// job's query batch), so tiles never re-evaluate shared leaf work.
    /// `active` prunes the tile's sweep to the job's active sub-DAG.
    pub(crate) fn evaluate_chunk_shared(
        &mut self,
        spn: &CompiledSpn,
        queries: &[SpnQuery],
        table: &LeafValueTable,
        base: usize,
        out: &mut [f64],
        active: Option<&ActiveSet>,
    ) {
        chunk(
            &mut self.scratch,
            table,
            spn,
            queries,
            base,
            out,
            true,
            active,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn chunk(
    scratch: &mut SweepScratch,
    table: &LeafValueTable,
    spn: &CompiledSpn,
    queries: &[SpnQuery],
    base: usize,
    out: &mut [f64],
    simd: bool,
    active: Option<&ActiveSet>,
) {
    assert_eq!(queries.len(), out.len(), "output slice arity mismatch");
    if queries.is_empty() {
        return;
    }
    scratch.sweep::<Expectation>(spn, queries, table, base, simd, active);
    out.copy_from_slice(scratch.root_values());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxprod::{MaxProductEvaluator, MpeOutcome, MpeProbe};
    use crate::{sweep_models, ColumnMeta, DataView, LeafFunc, LeafPred, Spn, SpnParams, SweepJob};

    fn small_spn() -> Spn {
        let cols = vec![
            vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, f64::NAN],
            vec![10.0, 20.0, 30.0, 30.0, 40.0, 10.0, 20.0, 30.0],
        ];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        Spn::learn(DataView::new(&cols, &meta), &SpnParams::default())
    }

    fn probe_mix() -> Vec<SpnQuery> {
        vec![
            SpnQuery::new(2),
            SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)),
            SpnQuery::new(2).with_pred(0, LeafPred::IsNull),
            SpnQuery::new(2)
                .with_pred(1, LeafPred::ge(30.0))
                .with_func(1, LeafFunc::X),
            SpnQuery::new(2).with_func(0, LeafFunc::InvClamp1),
        ]
    }

    #[test]
    fn batch_matches_sequential_single_queries() {
        let mut spn = small_spn();
        let compiled = spn.compile();
        let queries = probe_mix();
        let mut ev = BatchEvaluator::new();
        let batch = ev.evaluate(&compiled, &queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = spn.evaluate(q);
            assert!(
                (batch[i] - single).abs() < 1e-12,
                "query {i}: batch {} vs recursive {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn simd_and_scalar_kernels_agree_bitwise() {
        let spn = small_spn();
        let compiled = spn.compile();
        // Batch sizes straddling tile and lane boundaries, including the
        // degenerate single-query lane.
        let base = probe_mix();
        for n in [1, 2, 3, 4, 5, 31, 32, 33, 65] {
            let queries: Vec<SpnQuery> = (0..n).map(|i| base[i % base.len()].clone()).collect();
            let mut ev = BatchEvaluator::new();
            let simd = ev.evaluate(&compiled, &queries);
            let scalar = ev.evaluate_scalar(&compiled, &queries);
            let simd_bits: Vec<u64> = simd.iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
            assert_eq!(simd_bits, scalar_bits, "batch size {n}");
        }
    }

    /// Degenerate structures the SIMD kernels must not mishandle:
    /// single-child sum and product runs, and an all-zero-weight sum node
    /// (every edge skipped → the node evaluates to exactly 0.0).
    #[test]
    fn degenerate_nodes_agree_simd_scalar_recursive() {
        use crate::node::{Node, ProductNode, SumNode};
        use crate::Leaf;
        fn leaf_over(values: &[f64], col: usize) -> Leaf {
            let cols = vec![values.to_vec()];
            let meta = vec![ColumnMeta::discrete("x")];
            let data = DataView::new(&cols, &meta);
            let rows: Vec<u32> = (0..values.len() as u32).collect();
            let mut leaf = Leaf::build(&data, &rows, 0, 1000, 16);
            leaf.col = col;
            leaf
        }
        // root sum ── single-child product ── single-child sum ── leaf(col 0)
        //          └─ zero-weight leaf(col 0)        (counts [4, 0])
        let root = Node::Sum(SumNode {
            scope: vec![0],
            children: vec![
                Node::Product(ProductNode {
                    scope: vec![0],
                    children: vec![Node::Sum(SumNode {
                        scope: vec![0],
                        children: vec![Node::Leaf(leaf_over(&[1.0, 1.0, 2.0, 5.0], 0))],
                        counts: vec![4],
                        centroids: vec![vec![0.0]],
                        norm: vec![(0.0, 1.0)],
                    })],
                }),
                Node::Leaf(leaf_over(&[9.0], 0)),
            ],
            counts: vec![4, 0],
            centroids: vec![vec![-1.0], vec![1.0]],
            norm: vec![(0.0, 1.0)],
        });
        let mut spn = crate::Spn::new(root, vec![ColumnMeta::discrete("x")], 4);
        let compiled = spn.compile();
        // 33 queries straddle a tile boundary AND leave a partial lane.
        let queries: Vec<SpnQuery> = (0..33)
            .map(|i| match i % 4 {
                0 => SpnQuery::new(1),
                1 => SpnQuery::new(1).with_pred(0, LeafPred::eq(1.0)),
                2 => SpnQuery::new(1).with_pred(0, LeafPred::eq(9.0)), // zero-weight branch only
                _ => SpnQuery::new(1).with_func(0, LeafFunc::X),
            })
            .collect();
        let mut ev = BatchEvaluator::new();
        let simd = ev.evaluate(&compiled, &queries);
        let scalar = ev.evaluate_scalar(&compiled, &queries);
        for (i, (s, c)) in simd.iter().zip(&scalar).enumerate() {
            assert_eq!(s.to_bits(), c.to_bits(), "query {i}: simd vs scalar");
            let want = spn.evaluate(&queries[i]);
            assert!(
                (s - want).abs() < 1e-12,
                "query {i}: {s} vs recursive {want}"
            );
        }
        // The zero-weight branch is dead: probability of its exclusive
        // value is exactly 0 on every path.
        assert_eq!(simd[2].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn evaluator_scratch_is_reusable_across_models() {
        let spn_a = small_spn();
        let cols = vec![vec![5.0, 6.0, 7.0, 5.0], vec![1.0, 1.0, 2.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("x"), ColumnMeta::discrete("y")];
        let spn_b = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let (ca, cb) = (spn_a.compile(), spn_b.compile());
        let mut ev = BatchEvaluator::new();
        let qa = vec![SpnQuery::new(2)];
        let qb = vec![SpnQuery::new(2).with_pred(0, LeafPred::eq(5.0))];
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
        assert!((ev.evaluate(&cb, &qb)[0] - 0.5).abs() < 1e-12);
        // And back again.
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_empty() {
        let spn = small_spn();
        let compiled = spn.compile();
        let mut ev = BatchEvaluator::new();
        assert!(ev.evaluate(&compiled, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let spn = small_spn();
        let compiled = spn.compile();
        BatchEvaluator::new().evaluate(&compiled, &[SpnQuery::new(3)]);
    }

    #[test]
    fn sweep_models_matches_sequential_bitwise_any_thread_count() {
        let spn_a = small_spn();
        let cols = vec![vec![5.0, 6.0, 7.0, 5.0], vec![1.0, 1.0, 2.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("x"), ColumnMeta::discrete("y")];
        let spn_b = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let (ca, cb) = (spn_a.compile(), spn_b.compile());

        // Batches larger than one tile so the parallel path actually splits.
        let base = probe_mix();
        let qa: Vec<SpnQuery> = (0..100).map(|i| base[i % base.len()].clone()).collect();
        let qb: Vec<SpnQuery> = (0..67)
            .map(|i| SpnQuery::new(2).with_pred(0, LeafPred::eq(5.0 + (i % 3) as f64)))
            .collect();

        let mut ev = BatchEvaluator::new();
        let want_a = ev.evaluate(&ca, &qa);
        let want_b = ev.evaluate(&cb, &qb);

        for threads in [1, 2, 4, 7] {
            let mut got_a = vec![0.0; qa.len()];
            let mut got_b = vec![0.0; qb.len()];
            sweep_models(
                vec![
                    SweepJob::expect(&ca, &qa, &mut got_a),
                    SweepJob::expect(&cb, &qb, &mut got_b),
                ],
                threads,
            );
            assert_eq!(got_a, want_a, "model a, {threads} threads");
            assert_eq!(got_b, want_b, "model b, {threads} threads");
        }
    }

    #[test]
    fn sweep_counting_is_per_model_per_batch() {
        let spn = small_spn();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..80).map(|_| SpnQuery::new(2)).collect();
        let before = compiled.sweep_count();
        // One evaluate call = one sweep, regardless of tile count.
        BatchEvaluator::new().evaluate(&compiled, &queries);
        assert_eq!(compiled.sweep_count(), before + 1);
        // One sweep_models job = one sweep, even multi-threaded.
        let mut out = vec![0.0; queries.len()];
        sweep_models(vec![SweepJob::expect(&compiled, &queries, &mut out)], 4);
        assert_eq!(compiled.sweep_count(), before + 2);
        // Empty jobs don't count.
        sweep_models(vec![SweepJob::expect(&compiled, &[], &mut [])], 2);
        assert_eq!(compiled.sweep_count(), before + 2);
        // A job carrying both probe kinds still counts as ONE sweep.
        let probes: Vec<MpeProbe> = (0..40)
            .map(|i| MpeProbe::new(0, SpnQuery::new(2).with_pred(1, LeafPred::ge(i as f64))))
            .collect();
        let mut mpe_out = vec![MpeOutcome::default(); probes.len()];
        sweep_models(
            vec![SweepJob {
                spn: &compiled,
                queries: &queries,
                out: &mut out,
                mpe: &probes,
                mpe_out: &mut mpe_out,
                cancel: None,
                fault: None,
                active: None,
            }],
            4,
        );
        assert_eq!(compiled.sweep_count(), before + 3);
    }

    #[test]
    fn mixed_sweep_matches_dedicated_evaluators_any_thread_count() {
        let mut spn = small_spn();
        let compiled = spn.compile();
        let queries = probe_mix();
        let probes: Vec<MpeProbe> = (0..70)
            .map(|i| {
                MpeProbe::new(
                    i % 2,
                    SpnQuery::new(2).with_pred(1 - i % 2, LeafPred::ge((i % 4) as f64 * 10.0)),
                )
            })
            .collect();
        let want_q = BatchEvaluator::new().evaluate(&compiled, &queries);
        let want_p = MaxProductEvaluator::new().evaluate(&compiled, &probes);
        // And both must equal the recursive oracle.
        for (p, w) in probes.iter().zip(&want_p) {
            let (score, value) = spn.mpe_outcome(p.target, &p.query);
            assert_eq!(w.value, value);
            assert_eq!(w.score.to_bits(), score.to_bits());
        }
        for threads in [1, 2, 4] {
            let mut got_q = vec![0.0; queries.len()];
            let mut got_p = vec![MpeOutcome::default(); probes.len()];
            sweep_models(
                vec![SweepJob {
                    spn: &compiled,
                    queries: &queries,
                    out: &mut got_q,
                    mpe: &probes,
                    mpe_out: &mut got_p,
                    cancel: None,
                    fault: None,
                    active: None,
                }],
                threads,
            );
            assert_eq!(got_q, want_q, "{threads} threads");
            assert_eq!(got_p, want_p, "{threads} threads");
        }
    }
}
