//! Batched evaluation over the arena-compiled SPN.
//!
//! Cardinality estimation compiles one SQL query into *many* expectation
//! probes per ensemble member (count fraction, squared-moment, probability,
//! confidence-interval and GROUP BY probes). [`BatchEvaluator`] answers a
//! whole slice of [`SpnQuery`]s in a single forward sweep over the arena
//! arrays:
//!
//! * one `values` scratch buffer of `n_nodes × n_queries` partial results —
//!   node-major, so each node's row is written sequentially (large batches
//!   are processed in fixed-size query tiles, keeping the scratch
//!   cache-resident and memory bounded);
//! * per-query predicate normalization ([`NormPred`]) hoisted out of the
//!   leaf loop: the recursive evaluator re-normalizes at every leaf visit,
//!   here it happens once per (query, column) and is shared by every leaf on
//!   that column;
//! * leaves evaluate all query slots back-to-back ("vectorized per query
//!   slot"), then inner nodes combine child rows with the exact arithmetic
//!   of the recursive oracle (same order, same zero-skips), so results are
//!   identical, not approximately equal.
//!
//! The evaluator owns only scratch; it can be reused across arbitrary
//! [`CompiledSpn`]s and never allocates at steady state.

use crate::arena::{CompiledKind, CompiledSpn};
use crate::leaf::NormPred;
use crate::{LeafFunc, SpnQuery};

/// Queries evaluated per sweep. Bounds the scratch to `n_nodes × TILE`
/// doubles (L2-resident for realistic models) no matter how large the batch
/// is; tiles are independent, so tiling never changes results.
const TILE: usize = 32;

/// Reusable scratch for batched arena evaluation.
#[derive(Debug, Clone, Default)]
pub struct BatchEvaluator {
    /// `n_nodes × tile` partial expectations, node-major.
    values: Vec<f64>,
    /// `tile × n_cols` compiled slots: moment function + normalized
    /// predicate conjunction, `None` for marginalized columns.
    slots: Vec<Option<(LeafFunc, NormPred)>>,
}

impl BatchEvaluator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate every query against `spn`, returning one expectation per
    /// query (same order).
    pub fn evaluate(&mut self, spn: &CompiledSpn, queries: &[SpnQuery]) -> Vec<f64> {
        let mut out = Vec::with_capacity(queries.len());
        self.evaluate_into(spn, queries, &mut out);
        out
    }

    /// Like [`BatchEvaluator::evaluate`] but appending into a caller-owned
    /// buffer (cleared first), for allocation-free steady state.
    pub fn evaluate_into(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut Vec<f64>) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        let n_cols = spn.n_columns();
        for q in queries {
            assert_eq!(q.n_cols(), n_cols, "query arity mismatch");
        }
        for tile in queries.chunks(TILE) {
            self.evaluate_tile(spn, tile, out);
        }
    }

    /// One forward sweep over the arena for up to [`TILE`] queries.
    fn evaluate_tile(&mut self, spn: &CompiledSpn, queries: &[SpnQuery], out: &mut Vec<f64>) {
        let n_q = queries.len();
        let n_cols = spn.n_columns();

        // Hoist predicate normalization: once per (query, column).
        self.slots.clear();
        self.slots.reserve(n_q * n_cols);
        for q in queries {
            for col in 0..n_cols {
                self.slots.push(
                    q.slot(col)
                        .map(|s| (s.func.unwrap_or(LeafFunc::One), NormPred::new(&s.preds))),
                );
            }
        }

        let n_nodes = spn.n_nodes();
        self.values.clear();
        self.values.resize(n_nodes * n_q, 0.0);

        // Single forward sweep: children always precede parents.
        for node in 0..n_nodes {
            let row = node * n_q;
            match spn.kinds[node] {
                CompiledKind::Leaf => {
                    let payload = spn.leaf_of[node] as usize;
                    let leaf = &spn.leaves[payload];
                    let col = spn.leaf_col[payload] as usize;
                    for qi in 0..n_q {
                        self.values[row + qi] = match &self.slots[qi * n_cols + col] {
                            None => 1.0,
                            Some((func, np)) => leaf.expect_norm(*func, np),
                        };
                    }
                }
                CompiledKind::Product => {
                    let (s, e) = (spn.child_start[node] as usize, spn.child_end[node] as usize);
                    for qi in 0..n_q {
                        let mut acc = 1.0;
                        for &child in &spn.children[s..e] {
                            acc *= self.values[child as usize * n_q + qi];
                            if acc == 0.0 {
                                break;
                            }
                        }
                        self.values[row + qi] = acc;
                    }
                }
                CompiledKind::Sum => {
                    let (s, e) = (spn.child_start[node] as usize, spn.child_end[node] as usize);
                    for qi in 0..n_q {
                        let mut acc = 0.0;
                        for (k, &child) in spn.children[s..e].iter().enumerate() {
                            let w = spn.weights[s + k];
                            if w == 0.0 {
                                continue;
                            }
                            acc += w * self.values[child as usize * n_q + qi];
                        }
                        self.values[row + qi] = acc;
                    }
                }
            }
        }

        out.extend_from_slice(&self.values[(n_nodes - 1) * n_q..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, DataView, LeafPred, Spn, SpnParams};

    fn small_spn() -> Spn {
        let cols = vec![
            vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, f64::NAN],
            vec![10.0, 20.0, 30.0, 30.0, 40.0, 10.0, 20.0, 30.0],
        ];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        Spn::learn(DataView::new(&cols, &meta), &SpnParams::default())
    }

    #[test]
    fn batch_matches_sequential_single_queries() {
        let mut spn = small_spn();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = vec![
            SpnQuery::new(2),
            SpnQuery::new(2).with_pred(0, LeafPred::eq(0.0)),
            SpnQuery::new(2).with_pred(0, LeafPred::IsNull),
            SpnQuery::new(2)
                .with_pred(1, LeafPred::ge(30.0))
                .with_func(1, LeafFunc::X),
            SpnQuery::new(2).with_func(0, LeafFunc::InvClamp1),
        ];
        let mut ev = BatchEvaluator::new();
        let batch = ev.evaluate(&compiled, &queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = spn.evaluate(q);
            assert!(
                (batch[i] - single).abs() < 1e-12,
                "query {i}: batch {} vs recursive {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn evaluator_scratch_is_reusable_across_models() {
        let spn_a = small_spn();
        let cols = vec![vec![5.0, 6.0, 7.0, 5.0], vec![1.0, 1.0, 2.0, 2.0]];
        let meta = vec![ColumnMeta::discrete("x"), ColumnMeta::discrete("y")];
        let spn_b = Spn::learn(DataView::new(&cols, &meta), &SpnParams::default());
        let (ca, cb) = (spn_a.compile(), spn_b.compile());
        let mut ev = BatchEvaluator::new();
        let qa = vec![SpnQuery::new(2)];
        let qb = vec![SpnQuery::new(2).with_pred(0, LeafPred::eq(5.0))];
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
        assert!((ev.evaluate(&cb, &qb)[0] - 0.5).abs() < 1e-12);
        // And back again.
        assert!((ev.evaluate(&ca, &qa)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_empty() {
        let spn = small_spn();
        let compiled = spn.compile();
        let mut ev = BatchEvaluator::new();
        assert!(ev.evaluate(&compiled, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let spn = small_spn();
        let compiled = spn.compile();
        BatchEvaluator::new().evaluate(&compiled, &[SpnQuery::new(3)]);
    }
}
