//! Persistent worker pool for fused multi-model sweeps.
//!
//! [`sweep_models`] used to spawn fresh scoped threads behind a
//! `Mutex<Vec>` tile queue on every call — measurable fixed overhead that
//! made small multi-threaded probe plans *slower* than running inline. This
//! module replaces it with a [`WorkerPool`] that keeps its workers alive
//! across sweeps:
//!
//! * **pinned scratch** — each worker owns one [`WorkerScratch`] (a
//!   [`BatchEvaluator`] plus a [`MaxProductEvaluator`]) for its whole
//!   lifetime, so steady-state sweeps allocate nothing. The submitting
//!   thread participates too, with a thread-local scratch of its own.
//! * **atomic tile cursor** — tiles are claimed by `fetch_add` on a shared
//!   counter instead of popping a locked stack; claiming a tile is one
//!   uncontended atomic op.
//! * **park/unpark idling** — idle workers block on a condvar and are woken
//!   only when a job is published; an idle pool burns no CPU.
//!
//! Jobs are published as epochs: the submitter installs a tile-claiming
//! closure under the pool lock, wakes the workers, helps drain the cursor
//! itself, then closes the job and waits until every worker that joined the
//! epoch has retired before returning — which is what makes it sound to
//! hand workers short-lived tile borrows. A panic inside any tile is caught,
//! the job still drains, and the payload is rethrown on the submitting
//! thread.
//!
//! Determinism is unchanged from the scoped-thread implementation: a tile's
//! result depends only on its own probes and its own scratch, never on which
//! worker ran it or in what order, so every thread count (including the
//! inline `threads <= 1` path) produces bitwise-identical results.
//!
//! One process-wide pool ([`WorkerPool::global`]) serves the free
//! [`sweep_models`] function; embedders that want isolation (e.g. one pool
//! per `Ensemble`) construct their own with [`WorkerPool::new`].

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::arena::{ActiveSet, CompiledSpn};
use crate::batch::{BatchEvaluator, SWEEP_TILE};
use crate::kernel::{Expectation, LeafValueTable, MaxProduct};
use crate::maxprod::{MaxProductEvaluator, MpeOutcome, MpeProbe};
use crate::SpnQuery;

/// Upper bound on pool workers — a backstop against pathological `threads`
/// arguments, far above any realistic sweep parallelism.
const MAX_WORKERS: usize = 32;

/// Default worker-thread count for sweeps when callers pass `threads == 0`:
/// the host's available parallelism, clamped to `[1, 16]` (sweep tiles are
/// coarse; past ~16 workers the tile count, not the host, is the limit).
/// Probed once per process.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 16)
    })
}

/// Cooperative cancellation for an in-flight sweep, shared between the
/// submitter (who owns the flag) and every thread draining its tiles.
///
/// Workers check the flag each time they claim a tile off the cursor
/// ([`WorkerScratch::run`]); once it reads cancelled, remaining tiles are
/// *skipped*, leaving their outputs at the zeroed placeholder. The sweep
/// still drains and joins normally — cancellation never tears the pool —
/// but the outputs of a cancelled sweep are garbage, so callers must check
/// [`CancelFlag::is_cancelled`] before trusting them.
///
/// A flag can carry an optional deadline; deadline expiry is latched into
/// the atomic on first observation so steady-state checks stay one relaxed
/// load.
#[derive(Debug, Default)]
pub struct CancelFlag {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelFlag {
    /// A flag that only cancels when [`CancelFlag::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A flag that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancelled — explicitly or because the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancel();
                true
            }
            _ => false,
        }
    }
}

/// A fault injected at a tile boundary by a [`SweepJob::fault`] hook:
/// either panic inside the claiming thread's tile (exercising the pool's
/// catch-and-self-heal path) or sleep before evaluating (simulating a slow
/// model under deadline pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileFault {
    Panic,
    Delay(Duration),
}

/// Deterministic fault hook fired once per claimed tile, before the cancel
/// check and evaluation. Returning `None` means "no fault here". Used by
/// the serving chaos harness; production sweeps leave it unset.
pub type TileFaultFn<'a> = dyn Fn() -> Option<TileFault> + Sync + 'a;

/// One model's share of a fused multi-model sweep: an expectation-probe
/// batch **and** a max-product probe batch against one compiled arena, each
/// with a caller-owned output slice of the same length. Both batches belong
/// to the same logical sweep — the model's sweep counter advances once per
/// job, no matter which probe kinds it carries.
pub struct SweepJob<'a> {
    pub spn: &'a CompiledSpn,
    pub queries: &'a [SpnQuery],
    pub out: &'a mut [f64],
    /// Max-product probes riding the same sweep (classification / MPE).
    pub mpe: &'a [MpeProbe],
    pub mpe_out: &'a mut [MpeOutcome],
    /// Cooperative cancel flag checked at every tile claim; cancelled tiles
    /// are skipped (outputs keep their zeroed placeholder), so the caller
    /// must check the flag before trusting `out`/`mpe_out`.
    pub cancel: Option<&'a CancelFlag>,
    /// Fault-injection hook fired at every tile start (chaos testing only).
    pub fault: Option<&'a TileFaultFn<'a>>,
    /// Query-scoped prune set for every tile of this job (both probe kinds).
    /// Must cover the union of all the job's constrained columns plus every
    /// MPE probe's target column ([`CompiledSpn::active_set`]); pruned
    /// sweeps are then bitwise identical to full ones. `None` = full sweep.
    pub active: Option<&'a ActiveSet>,
}

impl<'a> SweepJob<'a> {
    /// Expectation-only job (the common AQP/cardinality shape).
    pub fn expect(spn: &'a CompiledSpn, queries: &'a [SpnQuery], out: &'a mut [f64]) -> Self {
        Self {
            spn,
            queries,
            out,
            mpe: &[],
            mpe_out: &mut [],
            cancel: None,
            fault: None,
            active: None,
        }
    }
}

/// A unit of worker work: one tile of one probe kind against one model,
/// plus its job's cancel/fault hooks and prune set.
struct Tile<'a> {
    kind: TileKind<'a>,
    cancel: Option<&'a CancelFlag>,
    fault: Option<&'a TileFaultFn<'a>>,
    active: Option<&'a ActiveSet>,
}

/// The tile's payload: one probe-kind chunk against one model, the job-wide
/// leaf-value table the tile gathers from, and the tile's probe offset
/// within its job batch.
enum TileKind<'a> {
    Expect(
        &'a CompiledSpn,
        &'a [SpnQuery],
        &'a mut [f64],
        &'a LeafValueTable,
        usize,
    ),
    Mpe(
        &'a CompiledSpn,
        &'a [MpeProbe],
        &'a mut [MpeOutcome],
        &'a LeafValueTable,
        usize,
    ),
}

/// Per-worker evaluator scratch, pinned to its worker (or to the submitting
/// thread) for the thread's lifetime so sweeps are allocation-free at
/// steady state.
#[derive(Default)]
struct WorkerScratch {
    expect: BatchEvaluator,
    maxprod: MaxProductEvaluator,
}

impl WorkerScratch {
    fn run(&mut self, tile: &mut Tile<'_>) {
        // Chaos hook first: injected panics/delays land exactly where a
        // genuinely faulty or slow tile would.
        if let Some(fault) = tile.fault {
            match fault() {
                Some(TileFault::Panic) => panic!("injected tile fault"),
                Some(TileFault::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
        }
        // Cooperative cancellation: skip the arithmetic, keep the drain
        // protocol (the claimed index is already consumed, outputs stay
        // zeroed, and the job still joins normally).
        if tile.cancel.is_some_and(|c| c.is_cancelled()) {
            return;
        }
        match &mut tile.kind {
            TileKind::Expect(spn, queries, out, table, base) => {
                self.expect
                    .evaluate_chunk_shared(spn, queries, table, *base, out, tile.active)
            }
            TileKind::Mpe(spn, probes, out, table, base) => {
                self.maxprod
                    .evaluate_chunk_shared(spn, probes, table, *base, out, tile.active)
            }
        }
    }
}

thread_local! {
    /// The submitting thread's own pinned scratch — it drains tiles
    /// alongside the workers.
    static SUBMITTER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// A tile-claiming closure: returns `false` once the cursor is exhausted.
/// The `'static` is a checked lie — see the completion handshake in
/// [`WorkerPool::run_tiles`].
type Task = dyn Fn(&mut WorkerScratch) -> bool + Sync;

/// Pool state a job transitions through, guarded by one mutex.
struct JobState {
    /// Monotonic job id; workers join an epoch at most once.
    epoch: u64,
    /// The open job's tile-claiming closure; `None` while idle/closed.
    task: Option<&'static Task>,
    /// Workers that observed this epoch and entered the job.
    joined: usize,
    /// Workers that finished the job (no further tile accesses).
    completed: usize,
    /// First panic payload raised inside a worker's tile, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    job: Mutex<JobState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here while draining stragglers.
    done: Condvar,
}

impl Shared {
    fn lock_job(&self) -> MutexGuard<'_, JobState> {
        // Tile panics are caught before the lock is re-taken, so the state
        // is never torn; recover instead of cascading the poison.
        self.job.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Raw tile-slice pointer smuggled into the job closure. Safety argument in
/// [`WorkerPool::run_tiles`].
struct TilePtr(*mut Tile<'static>);
unsafe impl Send for TilePtr {}
unsafe impl Sync for TilePtr {}

impl TilePtr {
    /// Accessor (rather than a public field) so closures capture the whole
    /// `Send + Sync` wrapper, not the bare pointer field.
    fn get(&self) -> *mut Tile<'static> {
        self.0
    }
}

/// A persistent sweep worker pool. Workers are spawned lazily on first
/// parallel use (up to the requested thread count), park between jobs, and
/// live until the pool is dropped. Dropping the pool (or process exit for
/// [`WorkerPool::global`]) shuts the workers down.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes submissions: one fused sweep owns the workers at a time.
    submit: Mutex<()>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let workers = self.workers.lock().map(|w| w.len()).unwrap_or(0);
        f.debug_struct("WorkerPool")
            .field("workers", &workers)
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool: no threads until the first parallel sweep asks for
    /// them.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                job: Mutex::new(JobState {
                    epoch: 0,
                    task: None,
                    joined: 0,
                    completed: 0,
                    panic: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        }
    }

    /// The process-wide pool behind [`sweep_models`].
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Execute one fused sweep per job, the tiles of **all** jobs
    /// load-balanced across up to `threads` threads (the submitting thread
    /// included). `threads == 0` means [`default_threads`]. Results are
    /// bitwise identical for every thread count.
    pub fn sweep(&self, jobs: Vec<SweepJob<'_>>, threads: usize) {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        // Build one job-wide leaf-value table per probe kind per job on the
        // submitting thread: every (leaf, distinct slot) pair is evaluated
        // exactly once per job, and the tiles below only gather from it.
        let mut tables: Vec<(LeafValueTable, LeafValueTable)> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            let mut t = (LeafValueTable::default(), LeafValueTable::default());
            if !job.queries.is_empty() {
                t.0.build::<Expectation>(job.spn, job.queries);
            }
            if !job.mpe.is_empty() {
                t.1.build::<MaxProduct>(job.spn, job.mpe);
            }
            tables.push(t);
        }
        // Split every job into independent per-kind tiles.
        let mut tiles: Vec<Tile<'_>> = Vec::new();
        for (job, tabs) in jobs.into_iter().zip(&tables) {
            let SweepJob {
                spn,
                mut queries,
                mut out,
                mut mpe,
                mut mpe_out,
                cancel,
                fault,
                active,
            } = job;
            assert_eq!(queries.len(), out.len(), "sweep job arity mismatch");
            assert_eq!(mpe.len(), mpe_out.len(), "sweep job MPE arity mismatch");
            if queries.is_empty() && mpe.is_empty() {
                continue;
            }
            // Both probe kinds of one job are one fused sweep of the model.
            spn.note_sweep();
            let mut base = 0;
            while !queries.is_empty() {
                let k = queries.len().min(SWEEP_TILE);
                let (q_head, q_tail) = queries.split_at(k);
                let (o_head, o_tail) = std::mem::take(&mut out).split_at_mut(k);
                tiles.push(Tile {
                    kind: TileKind::Expect(spn, q_head, o_head, &tabs.0, base),
                    cancel,
                    fault,
                    active,
                });
                queries = q_tail;
                out = o_tail;
                base += k;
            }
            let mut base = 0;
            while !mpe.is_empty() {
                let k = mpe.len().min(SWEEP_TILE);
                let (p_head, p_tail) = mpe.split_at(k);
                let (o_head, o_tail) = std::mem::take(&mut mpe_out).split_at_mut(k);
                tiles.push(Tile {
                    kind: TileKind::Mpe(spn, p_head, o_head, &tabs.1, base),
                    cancel,
                    fault,
                    active,
                });
                mpe = p_tail;
                mpe_out = o_tail;
                base += k;
            }
        }
        self.run_tiles(&mut tiles, threads);
    }

    /// Drain `tiles` across the submitting thread plus up to `threads - 1`
    /// pool workers.
    fn run_tiles(&self, tiles: &mut [Tile<'_>], threads: usize) {
        let n = tiles.len();
        let helpers = threads.clamp(1, MAX_WORKERS).min(n.max(1)) - 1;
        if helpers == 0 {
            // Inline path: no handoff, no locks; same per-tile arithmetic.
            SUBMITTER_SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                for tile in tiles.iter_mut() {
                    scratch.run(tile);
                }
            });
            return;
        }

        let _submit = self.submit.lock().unwrap_or_else(PoisonError::into_inner);
        self.ensure_workers(helpers);

        let cursor = AtomicUsize::new(0);
        // SAFETY (lifetime erasure): workers only reach the tiles through
        // `task` below. The closure hands each claimed index to exactly one
        // thread (`fetch_add`), so tile accesses never alias; and before
        // this function returns — whether the submitter's own drain panics
        // or not — the job is closed and the submitter blocks until
        // `completed == joined`, i.e. until no worker can touch `task` or
        // the tiles again. The erased borrows therefore never outlive the
        // data they point to.
        let tiles_ptr = TilePtr(tiles.as_mut_ptr().cast());
        let task = move |scratch: &mut WorkerScratch| -> bool {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return false;
            }
            let tile = unsafe { &mut *tiles_ptr.get().add(i) };
            scratch.run(tile);
            true
        };
        let task_ref: &Task = &task;
        let task_static: &'static Task = unsafe { std::mem::transmute(task_ref) };

        {
            let mut job = self.shared.lock_job();
            job.epoch += 1;
            job.task = Some(task_static);
            job.joined = 0;
            job.completed = 0;
            job.panic = None;
        }
        self.shared.work.notify_all();

        // The submitter drains tiles too, with its own pinned scratch. A
        // panic here must not skip the close-and-wait handshake, so it is
        // caught and rethrown after the stragglers retire.
        let own = catch_unwind(AssertUnwindSafe(|| {
            SUBMITTER_SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                while task(scratch) {}
            })
        }));

        // Close the job and wait for every joined worker to retire.
        let worker_panic = {
            let mut job = self.shared.lock_job();
            job.task = None;
            while job.completed < job.joined {
                job = self
                    .shared
                    .done
                    .wait(job)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            job.panic.take()
        };
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Grow the worker set to at least `want` threads (never shrinks;
    /// capped at [`MAX_WORKERS`]).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        while workers.len() < want {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("deepdb-sweep-{}", workers.len()))
                .spawn(move || worker_loop(shared))
                .expect("spawn sweep worker");
            workers.push(handle);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.lock_job().shutdown = true;
        self.shared.work.notify_all();
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

/// Body of one pool worker: park until a job epoch opens, drain its tile
/// cursor with the pinned scratch, report completion, repeat.
fn worker_loop(shared: Arc<Shared>) {
    let mut scratch = WorkerScratch::default();
    let mut seen = 0u64;
    loop {
        let task = {
            let mut job = shared.lock_job();
            loop {
                if job.shutdown {
                    return;
                }
                if job.epoch != seen {
                    if let Some(task) = job.task {
                        seen = job.epoch;
                        job.joined += 1;
                        break task;
                    }
                    // Epoch already closed before this worker woke: skip it.
                    seen = job.epoch;
                }
                job = shared
                    .work
                    .wait(job)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| while task(&mut scratch) {}));
        let mut job = shared.lock_job();
        if let Err(payload) = result {
            // The scratch may be mid-update; replace it wholesale.
            scratch = WorkerScratch::default();
            if job.panic.is_none() {
                job.panic = Some(payload);
            }
        }
        job.completed += 1;
        shared.done.notify_all();
    }
}

/// Execute one fused sweep per job on the process-wide [`WorkerPool`], the
/// tiles of **all** jobs load-balanced across up to `threads` threads
/// (`0` = [`default_threads`]). Each participating thread owns pinned
/// evaluator scratch, so evaluation only needs `&CompiledSpn`.
///
/// Results are bitwise identical for every thread count (including the
/// inline `threads <= 1` path): a query's value depends only on its own
/// normalized slots and its own scratch column, never on tile-mates or
/// scheduling order, and each tile writes a disjoint output range.
pub fn sweep_models(jobs: Vec<SweepJob<'_>>, threads: usize) {
    WorkerPool::global().sweep(jobs, threads)
}

/// Allocation-free single-threaded fused sweep for prepared queries.
///
/// [`WorkerPool::sweep`] builds fresh per-job leaf-value tables and a tile
/// vector on every call — fine for ad-hoc plans, but a prepared query that
/// executes thousands of times wants a **zero-allocation** steady state.
/// `InlineSweep` owns both job-wide tables (grow-only, reassigned in place
/// per sweep) and drives the tiles inline on the calling thread with its
/// thread-local pinned scratch. The per-tile arithmetic is the same
/// [`crate::BatchEvaluator`] chunk path every other sweep runs, so results
/// are bitwise identical to pooled and ad-hoc execution.
#[derive(Debug, Clone, Default)]
pub struct InlineSweep {
    expect_table: LeafValueTable,
    mpe_table: LeafValueTable,
}

impl InlineSweep {
    pub fn new() -> Self {
        Self::default()
    }

    /// One fused sweep of one model: expectation probes and max-product
    /// probes (either batch may be empty), outputs written in probe order.
    /// `active` prunes every tile of the sweep to the job's active sub-DAG
    /// (same contract as [`SweepJob::active`]). Advances the model's sweep
    /// counter once when any probe ran.
    pub fn sweep(
        &mut self,
        spn: &CompiledSpn,
        queries: &[SpnQuery],
        out: &mut [f64],
        mpe: &[MpeProbe],
        mpe_out: &mut [MpeOutcome],
        active: Option<&ActiveSet>,
    ) {
        assert_eq!(queries.len(), out.len(), "sweep job arity mismatch");
        assert_eq!(mpe.len(), mpe_out.len(), "sweep job MPE arity mismatch");
        if queries.is_empty() && mpe.is_empty() {
            return;
        }
        if !queries.is_empty() {
            self.expect_table.build::<Expectation>(spn, queries);
        }
        if !mpe.is_empty() {
            self.mpe_table.build::<MaxProduct>(spn, mpe);
        }
        spn.note_sweep();
        SUBMITTER_SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            let mut base = 0;
            for (q, o) in queries.chunks(SWEEP_TILE).zip(out.chunks_mut(SWEEP_TILE)) {
                scratch
                    .expect
                    .evaluate_chunk_shared(spn, q, &self.expect_table, base, o, active);
                base += q.len();
            }
            let mut base = 0;
            for (p, o) in mpe.chunks(SWEEP_TILE).zip(mpe_out.chunks_mut(SWEEP_TILE)) {
                scratch
                    .maxprod
                    .evaluate_chunk_shared(spn, p, &self.mpe_table, base, o, active);
                base += p.len();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnMeta, DataView, LeafPred, Spn, SpnParams};

    fn model() -> Spn {
        let cols = vec![
            vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, f64::NAN],
            vec![10.0, 20.0, 30.0, 30.0, 40.0, 10.0, 20.0, 30.0],
        ];
        let meta = vec![ColumnMeta::discrete("a"), ColumnMeta::discrete("b")];
        Spn::learn(DataView::new(&cols, &meta), &SpnParams::default())
    }

    #[test]
    fn pool_reuses_workers_across_sweeps() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..4 * SWEEP_TILE)
            .map(|i| SpnQuery::new(2).with_pred(1, LeafPred::ge((i % 5) as f64 * 10.0)))
            .collect();
        let pool = WorkerPool::new();
        let mut want = vec![0.0; queries.len()];
        pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut want)], 1);
        for round in 0..3 {
            let mut got = vec![0.0; queries.len()];
            pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut got)], 4);
            assert_eq!(got, want, "round {round}");
        }
        // Lazy spawn: parallel sweeps grew the pool, but only to helpers-1.
        let spawned = pool.workers.lock().unwrap().len();
        assert!(
            (1..=3).contains(&spawned),
            "expected 1..=3 helpers, got {spawned}"
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..3 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let mut want = vec![0.0; queries.len()];
        sweep_models(vec![SweepJob::expect(&compiled, &queries, &mut want)], 1);
        let mut got = vec![0.0; queries.len()];
        sweep_models(vec![SweepJob::expect(&compiled, &queries, &mut got)], 0);
        assert_eq!(got, want);
        assert!(default_threads() >= 1 && default_threads() <= 16);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let spn = model();
        let compiled = spn.compile();
        let pool = Arc::new(WorkerPool::new());
        // An out-of-range MPE target panics inside the tile.
        let bad: Vec<MpeProbe> = (0..2 * SWEEP_TILE)
            .map(|_| MpeProbe::new(99, SpnQuery::new(2)))
            .collect();
        let panicked = {
            let pool = Arc::clone(&pool);
            let compiled = compiled.clone();
            std::thread::spawn(move || {
                let mut out = vec![MpeOutcome::default(); bad.len()];
                catch_unwind(AssertUnwindSafe(|| {
                    pool.sweep(
                        vec![SweepJob {
                            spn: &compiled,
                            queries: &[],
                            out: &mut [],
                            mpe: &bad,
                            mpe_out: &mut out,
                            cancel: None,
                            fault: None,
                            active: None,
                        }],
                        4,
                    )
                }))
                .is_err()
            })
            .join()
            .expect("driver thread")
        };
        assert!(panicked, "target-out-of-range must propagate");
        // The pool still runs clean jobs afterwards.
        let queries: Vec<SpnQuery> = (0..2 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let mut out = vec![0.0; queries.len()];
        pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut out)], 4);
        assert!(out.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    /// Build an expectation job over `queries` with hooks attached.
    fn hooked_job<'a>(
        compiled: &'a CompiledSpn,
        queries: &'a [SpnQuery],
        out: &'a mut [f64],
        cancel: Option<&'a CancelFlag>,
        fault: Option<&'a TileFaultFn<'a>>,
    ) -> SweepJob<'a> {
        SweepJob {
            spn: compiled,
            queries,
            out,
            mpe: &[],
            mpe_out: &mut [],
            cancel,
            fault,
            active: None,
        }
    }

    #[test]
    fn repeated_injected_panics_never_poison_later_sweeps() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..4 * SWEEP_TILE)
            .map(|i| SpnQuery::new(2).with_pred(1, LeafPred::ge((i % 5) as f64 * 10.0)))
            .collect();
        let pool = WorkerPool::new();
        let mut want = vec![0.0; queries.len()];
        pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut want)], 1);

        for round in 0..5 {
            // Panic on every third claimed tile, from whichever thread
            // claims it (submitter included).
            let hits = AtomicUsize::new(0);
            let fault = move || {
                if hits.fetch_add(1, Ordering::Relaxed).is_multiple_of(3) {
                    Some(TileFault::Panic)
                } else {
                    None
                }
            };
            let mut out = vec![0.0; queries.len()];
            let job = hooked_job(&compiled, &queries, &mut out, None, Some(&fault));
            let panicked = catch_unwind(AssertUnwindSafe(|| pool.sweep(vec![job], 4))).is_err();
            assert!(panicked, "round {round}: injected tile panic must surface");

            // The very next sweep on the same pool must be bitwise clean.
            let mut got = vec![0.0; queries.len()];
            pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut got)], 4);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "round {round}, probe {i}");
            }
        }
    }

    #[test]
    fn cancelled_flag_skips_tiles_and_sweep_still_joins() {
        let spn = model();
        let compiled = spn.compile();
        // Empty-predicate probes evaluate to exactly 1.0, so a zero output
        // proves the tile was skipped rather than evaluated.
        let queries: Vec<SpnQuery> = (0..3 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let pool = WorkerPool::new();
        let flag = CancelFlag::new();
        flag.cancel();
        let mut out = vec![0.0; queries.len()];
        let job = hooked_job(&compiled, &queries, &mut out, Some(&flag), None);
        pool.sweep(vec![job], 4); // must not hang or panic
        assert!(flag.is_cancelled());
        assert!(
            out.iter().all(|&v| v == 0.0),
            "cancelled tiles must be skipped"
        );
        // The pool still answers correctly afterwards.
        let mut got = vec![0.0; queries.len()];
        pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut got)], 4);
        assert!(got.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deadline_flag_trips_mid_sweep_under_delay() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..4 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let pool = WorkerPool::new();
        // Every tile sleeps 5ms; the deadline passes after ~1ms, so the
        // flag latches partway through and the sweep still completes.
        let fault = || Some(TileFault::Delay(Duration::from_millis(5)));
        let flag = CancelFlag::with_deadline(Instant::now() + Duration::from_millis(1));
        let mut out = vec![0.0; queries.len()];
        let job = hooked_job(&compiled, &queries, &mut out, Some(&flag), Some(&fault));
        pool.sweep(vec![job], 2);
        assert!(flag.is_cancelled(), "deadline expiry must latch the flag");
    }

    #[test]
    fn drop_joins_cleanly_after_injected_panics() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..3 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let pool = WorkerPool::new();
        let fault = || Some(TileFault::Panic);
        let mut out = vec![0.0; queries.len()];
        let job = hooked_job(&compiled, &queries, &mut out, None, Some(&fault));
        let panicked = catch_unwind(AssertUnwindSafe(|| pool.sweep(vec![job], 4))).is_err();
        assert!(panicked);
        drop(pool); // must join every worker despite the mid-panic state
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let spn = model();
        let compiled = spn.compile();
        let queries: Vec<SpnQuery> = (0..2 * SWEEP_TILE).map(|_| SpnQuery::new(2)).collect();
        let mut out = vec![0.0; queries.len()];
        let pool = WorkerPool::new();
        pool.sweep(vec![SweepJob::expect(&compiled, &queries, &mut out)], 2);
        drop(pool); // must not hang or leak threads
    }
}
