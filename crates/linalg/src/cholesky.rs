//! Cholesky factorization and triangular solves.

use crate::Matrix;

/// Errors from [`cholesky`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// Input was not square.
    NotSquare,
    /// A pivot was non-positive: the matrix is not positive definite.
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare => write!(f, "cholesky requires a square matrix"),
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

/// Factor a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is read, so slightly asymmetric inputs
/// (floating-point noise) are tolerated.
pub fn cholesky(a: &Matrix) -> Result<CholeskyFactor, CholeskyError> {
    if a.rows() != a.cols() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { pivot: j });
        }
        let dsqrt = diag.sqrt();
        l[(j, j)] = dsqrt;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / dsqrt;
        }
    }
    Ok(CholeskyFactor { l })
}

impl CholeskyFactor {
    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L · X = B` (forward substitution), column by column.
    pub fn solve_lower(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n, "rhs row mismatch");
        let mut x = b.clone();
        for col in 0..b.cols() {
            for i in 0..n {
                let mut v = x[(i, col)];
                for k in 0..i {
                    v -= self.l[(i, k)] * x[(k, col)];
                }
                x[(i, col)] = v / self.l[(i, i)];
            }
        }
        x
    }

    /// Solve `Lᵀ · X = B` (backward substitution), column by column.
    pub fn solve_upper(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n, "rhs row mismatch");
        let mut x = b.clone();
        for col in 0..b.cols() {
            for i in (0..n).rev() {
                let mut v = x[(i, col)];
                for k in (i + 1)..n {
                    v -= self.l[(k, i)] * x[(k, col)];
                }
                x[(i, col)] = v / self.l[(i, i)];
            }
        }
        x
    }

    /// Solve `A · X = B` where `A = L·Lᵀ`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        self.solve_upper(&self.solve_lower(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M·Mᵀ + I for a fixed M is SPD by construction.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let f = cholesky(&a).unwrap();
        let back = f.l().matmul(&f.l().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let f = cholesky(&a).unwrap();
        let x_true = Matrix::from_rows(&[&[1.0], &[-2.0], &[0.5]]);
        let b = a.matmul(&x_true);
        let x = f.solve(&b);
        for i in 0..3 {
            assert!((x[(i, 0)] - x_true[(i, 0)]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a).unwrap_err(), CholeskyError::NotSquare);
    }

    #[test]
    fn identity_factor_is_identity() {
        let f = cholesky(&Matrix::identity(4)).unwrap();
        assert_eq!(f.l(), &Matrix::identity(4));
    }
}
