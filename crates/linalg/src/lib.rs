//! Minimal dense linear algebra for DeepDB.
//!
//! Provides exactly what the RDC dependence test needs: a dense row-major
//! [`Matrix`], matrix products, Cholesky factorization with triangular
//! solves, a Jacobi eigensolver for symmetric matrices, and canonical
//! correlation analysis built from those pieces. Everything is `f64` and
//! written from scratch — no external numeric dependencies.

mod cca;
mod cholesky;
mod eigen;
mod matrix;

pub use cca::{canonical_correlation, CcaError};
pub use cholesky::{cholesky, CholeskyError, CholeskyFactor};
pub use eigen::{symmetric_eigenvalues, EigenOptions};
pub use matrix::Matrix;
