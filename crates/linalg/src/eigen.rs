//! Jacobi eigenvalue iteration for symmetric matrices.
//!
//! The classical cyclic Jacobi method: repeatedly zero the largest
//! off-diagonal element with a Givens rotation until the off-diagonal mass is
//! negligible. Cubic per sweep but our matrices are tiny (k ≈ 20 for RDC), so
//! robustness beats asymptotics.

use crate::Matrix;

/// Convergence controls for [`symmetric_eigenvalues`].
#[derive(Debug, Clone, Copy)]
pub struct EigenOptions {
    /// Stop when the largest off-diagonal magnitude falls below this.
    pub tolerance: f64,
    /// Hard cap on sweeps to guarantee termination.
    pub max_sweeps: usize,
}

impl Default for EigenOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_sweeps: 100,
        }
    }
}

/// Eigenvalues of a symmetric matrix, sorted descending.
///
/// Symmetry is enforced by averaging `a` with its transpose, so inputs that
/// are symmetric up to floating-point noise are fine.
///
/// # Panics
/// Panics if `a` is not square.
pub fn symmetric_eigenvalues(a: &Matrix, opts: EigenOptions) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols(), "eigenvalues of a non-square matrix");
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    // Symmetrize defensively.
    let mut m = a.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }

    for _sweep in 0..opts.max_sweeps {
        // Largest off-diagonal element.
        let mut p = 0;
        let mut q = 1.min(n - 1);
        let mut max = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = m[(i, j)].abs();
                if v > max {
                    max = v;
                    p = i;
                    q = j;
                }
            }
        }
        if n < 2 || max < opts.tolerance {
            break;
        }
        // Givens rotation annihilating m[p][q].
        let app = m[(p, p)];
        let aqq = m[(q, q)];
        let apq = m[(p, q)];
        let theta = (aqq - app) / (2.0 * apq);
        let t = if theta >= 0.0 {
            1.0 / (theta + (1.0 + theta * theta).sqrt())
        } else {
            1.0 / (theta - (1.0 + theta * theta).sqrt())
        };
        let c = 1.0 / (1.0 + t * t).sqrt();
        let s = t * c;

        for k in 0..n {
            let akp = m[(k, p)];
            let akq = m[(k, q)];
            m[(k, p)] = c * akp - s * akq;
            m[(k, q)] = s * akp + c * akq;
        }
        for k in 0..n {
            let apk = m[(p, k)];
            let aqk = m[(q, k)];
            m[(p, k)] = c * apk - s * aqk;
            m[(q, k)] = s * apk + c * aqk;
        }
        // Re-symmetrize the rotated pair to kill rounding drift.
        m[(p, q)] = 0.0;
        m[(q, p)] = 0.0;
    }

    let mut eig: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    eig.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    eig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_returns_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 7.0;
        let e = symmetric_eigenvalues(&a, EigenOptions::default());
        assert_eq!(e, vec![7.0, 3.0, -1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigenvalues(&a, EigenOptions::default());
        assert!((e[0] - 3.0).abs() < 1e-10);
        assert!((e[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let frob2: f64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| a[(i, j)] * a[(i, j)])
            .sum();
        let e = symmetric_eigenvalues(&a, EigenOptions::default());
        let esum: f64 = e.iter().sum();
        let e2: f64 = e.iter().map(|v| v * v).sum();
        assert!(
            (esum - trace).abs() < 1e-8,
            "trace {trace} vs eig sum {esum}"
        );
        assert!((e2 - frob2).abs() < 1e-8, "frobenius mismatch");
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let a = b.t_matmul(&b); // BᵀB is PSD
        let e = symmetric_eigenvalues(&a, EigenOptions::default());
        for v in e {
            assert!(v > -1e-10);
        }
    }

    #[test]
    fn empty_matrix() {
        assert!(symmetric_eigenvalues(&Matrix::zeros(0, 0), EigenOptions::default()).is_empty());
    }
}
