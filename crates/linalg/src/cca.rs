//! Canonical correlation analysis via Cholesky whitening.

use crate::{cholesky, symmetric_eigenvalues, EigenOptions, Matrix};

/// Errors from [`canonical_correlation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcaError {
    /// Fewer than two observations — correlation is undefined.
    TooFewRows,
    /// `x` and `y` disagree on the number of observations.
    RowMismatch,
    /// A feature matrix contained NaN/inf.
    NonFinite,
}

impl std::fmt::Display for CcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewRows => write!(f, "need at least 2 rows for CCA"),
            Self::RowMismatch => write!(f, "x and y must have the same row count"),
            Self::NonFinite => write!(f, "feature matrix contains non-finite values"),
        }
    }
}

impl std::error::Error for CcaError {}

/// Largest canonical correlation between the column spaces of `x` and `y`.
///
/// Computes the top eigenvalue of the whitened cross-covariance operator
/// `Lx⁻¹·Cxy·Cyy⁻¹·Cyx·Lx⁻ᵀ` where `Cxx = Lx·Lxᵀ`. Covariance blocks are
/// ridge-regularized with `reg` (relative to the average diagonal magnitude),
/// which both guarantees positive definiteness for rank-deficient feature
/// maps and mildly shrinks the estimate — the same trick the reference RDC
/// implementation uses.
///
/// Returns a value in `[0, 1]`.
pub fn canonical_correlation(x: &Matrix, y: &Matrix, reg: f64) -> Result<f64, CcaError> {
    if x.rows() != y.rows() {
        return Err(CcaError::RowMismatch);
    }
    if x.rows() < 2 {
        return Err(CcaError::TooFewRows);
    }
    if !x.is_finite() || !y.is_finite() {
        return Err(CcaError::NonFinite);
    }
    let n = x.rows() as f64;
    let mut xc = x.clone();
    let mut yc = y.clone();
    xc.center_columns();
    yc.center_columns();

    let scale = 1.0 / (n - 1.0);
    let mut cxx = xc.t_matmul(&xc);
    let mut cyy = yc.t_matmul(&yc);
    let mut cxy = xc.t_matmul(&yc);
    for m in [&mut cxx, &mut cyy, &mut cxy] {
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                m[(i, j)] *= scale;
            }
        }
    }

    // Ridge scaled to the typical variance so the regularization strength is
    // unit-free.
    let avg_diag = |m: &Matrix| -> f64 {
        let k = m.rows();
        if k == 0 {
            return 1.0;
        }
        let s: f64 = (0..k).map(|i| m[(i, i)].abs()).sum();
        (s / k as f64).max(1e-12)
    };
    let ridge_x = reg.max(1e-10) * avg_diag(&cxx);
    let ridge_y = reg.max(1e-10) * avg_diag(&cyy);
    cxx.add_diagonal(ridge_x);
    cyy.add_diagonal(ridge_y);

    let lx = cholesky(&cxx).map_err(|_| CcaError::NonFinite)?;
    let ly = cholesky(&cyy).map_err(|_| CcaError::NonFinite)?;

    // B = Cxy · Cyy⁻¹ · Cyx  (p×p, symmetric PSD).
    let cyx = cxy.transpose();
    let cyy_inv_cyx = ly.solve(&cyx);
    let b = cxy.matmul(&cyy_inv_cyx);

    // M = Lx⁻¹ · B · Lx⁻ᵀ.
    let t = lx.solve_lower(&b);
    let m = lx.solve_lower(&t.transpose()).transpose();

    let eig = symmetric_eigenvalues(&m, EigenOptions::default());
    let lambda = eig.first().copied().unwrap_or(0.0).clamp(0.0, 1.0);
    Ok(lambda.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    #[test]
    fn perfectly_correlated_columns_give_one() {
        let mut rng = lcg(7);
        let n = 300;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let v = rng();
            x[(i, 0)] = v;
            y[(i, 0)] = 3.0 * v - 1.0; // exact linear map
        }
        let r = canonical_correlation(&x, &y, 1e-6).unwrap();
        assert!(r > 0.999, "r = {r}");
    }

    #[test]
    fn independent_columns_give_near_zero() {
        let mut rng = lcg(99);
        let n = 2000;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            x[(i, 0)] = rng();
            y[(i, 0)] = rng();
        }
        let r = canonical_correlation(&x, &y, 1e-6).unwrap();
        assert!(r < 0.15, "r = {r}");
    }

    #[test]
    fn correlation_hidden_in_one_of_many_columns_is_found() {
        let mut rng = lcg(5);
        let n = 500;
        let mut x = Matrix::zeros(n, 3);
        let mut y = Matrix::zeros(n, 3);
        for i in 0..n {
            let shared = rng();
            x[(i, 0)] = rng();
            x[(i, 1)] = shared;
            x[(i, 2)] = rng();
            y[(i, 0)] = rng();
            y[(i, 1)] = rng();
            y[(i, 2)] = 0.9 * shared + 0.1 * rng();
        }
        let r = canonical_correlation(&x, &y, 1e-6).unwrap();
        assert!(r > 0.85, "r = {r}");
    }

    #[test]
    fn result_is_bounded() {
        let mut rng = lcg(123);
        let n = 100;
        let mut x = Matrix::zeros(n, 4);
        let mut y = Matrix::zeros(n, 4);
        for i in 0..n {
            for j in 0..4 {
                x[(i, j)] = rng();
                y[(i, j)] = rng();
            }
        }
        let r = canonical_correlation(&x, &y, 1e-4).unwrap();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn degenerate_constant_columns_do_not_error() {
        let x = Matrix::zeros(50, 2);
        let mut y = Matrix::zeros(50, 2);
        let mut rng = lcg(1);
        for i in 0..50 {
            y[(i, 0)] = rng();
        }
        // Constant x: regularization must keep Cholesky alive; correlation ~ 0.
        let r = canonical_correlation(&x, &y, 1e-6).unwrap();
        assert!(r < 0.2, "r = {r}");
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            canonical_correlation(&Matrix::zeros(3, 1), &Matrix::zeros(4, 1), 1e-6).unwrap_err(),
            CcaError::RowMismatch
        );
        assert_eq!(
            canonical_correlation(&Matrix::zeros(1, 1), &Matrix::zeros(1, 1), 1e-6).unwrap_err(),
            CcaError::TooFewRows
        );
    }
}
