//! Dense row-major matrix with the handful of operations CCA needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop contiguous in both rhs and out.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let left = self.row(r);
            let right = rhs.row(r);
            for (i, &a) in left.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(right) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Add `eps` to the diagonal in place (ridge regularization).
    pub fn add_diagonal(&mut self, eps: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += eps;
        }
    }

    /// Column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for i in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// Subtract the column mean from every entry (centering), in place.
    pub fn center_columns(&mut self) {
        let means = self.column_means();
        for i in 0..self.rows {
            for (v, m) in self.row_mut(i).iter_mut().zip(&means) {
                *v -= m;
            }
        }
    }

    /// Maximum absolute entry, 0.0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 2.0], &[1.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn centering_zeroes_column_means() {
        let mut a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0], &[5.0, 30.0]]);
        a.center_columns();
        for m in a.column_means() {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
