//! Minimal neural-network library for the workload-driven baselines.
//!
//! Provides exactly what the MCSN cardinality estimator (Kipf et al., CIDR
//! 2019) and the MLP regression baseline of Figure 13 need: dense layers
//! with ReLU, mean-pooling over sets, MSE loss, and the Adam optimizer —
//! all hand-written with analytically derived, numerically verified
//! gradients. No tensors, no autograd: the models are small and fixed-shape.

mod mcsn;
mod mlp;

pub use mcsn::{McsnNet, SetSample};
pub use mlp::{Adam, Dense, Mlp};
