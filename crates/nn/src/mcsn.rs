//! Multi-Set Convolutional Network (Kipf et al., CIDR 2019).
//!
//! The architecture of the paper's learned baseline: a query is featurized
//! into three sets — joined tables, join edges, and filter predicates. Each
//! set element passes through a set-specific two-layer MLP; element outputs
//! are average-pooled; the three pooled vectors are concatenated and fed to
//! an output MLP predicting the normalized log-cardinality.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mlp::{Adam, Mlp};

/// Featurized query: one feature vector per set element.
#[derive(Debug, Clone, Default)]
pub struct SetSample {
    pub tables: Vec<Vec<f64>>,
    pub joins: Vec<Vec<f64>>,
    pub predicates: Vec<Vec<f64>>,
}

/// The multi-set network with its optimizer.
#[derive(Debug, Clone)]
pub struct McsnNet {
    table_mlp: Mlp,
    join_mlp: Mlp,
    pred_mlp: Mlp,
    out_mlp: Mlp,
    opt: Adam,
    hidden: usize,
}

impl McsnNet {
    /// Build for the given per-set feature dimensions.
    pub fn new(
        table_dim: usize,
        join_dim: usize,
        pred_dim: usize,
        hidden: usize,
        lr: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            table_mlp: Mlp::new(&[table_dim, hidden, hidden], &mut rng),
            join_mlp: Mlp::new(&[join_dim, hidden, hidden], &mut rng),
            pred_mlp: Mlp::new(&[pred_dim, hidden, hidden], &mut rng),
            out_mlp: Mlp::new(&[3 * hidden, hidden, 1], &mut rng),
            opt: Adam::new(lr),
            hidden,
        }
    }

    /// Mean-pool the per-element MLP outputs (zero vector for empty sets).
    fn pool(mlp: &Mlp, set: &[Vec<f64>], hidden: usize) -> (Vec<Vec<Vec<f64>>>, Vec<f64>) {
        let mut caches = Vec::with_capacity(set.len());
        let mut pooled = vec![0.0; hidden];
        for e in set {
            let acts = mlp.forward_cached(e);
            for (p, v) in pooled.iter_mut().zip(acts.last().expect("output")) {
                *p += v;
            }
            caches.push(acts);
        }
        if !set.is_empty() {
            let inv = 1.0 / set.len() as f64;
            for p in &mut pooled {
                *p *= inv;
            }
        }
        (caches, pooled)
    }

    /// Predict the normalized target for a featurized query.
    pub fn predict(&self, s: &SetSample) -> f64 {
        let (_, pt) = Self::pool(&self.table_mlp, &s.tables, self.hidden);
        let (_, pj) = Self::pool(&self.join_mlp, &s.joins, self.hidden);
        let (_, pp) = Self::pool(&self.pred_mlp, &s.predicates, self.hidden);
        let mut concat = pt;
        concat.extend(pj);
        concat.extend(pp);
        self.out_mlp.forward(&concat)[0]
    }

    /// One training step with MSE loss on the normalized target. Returns the
    /// squared error before the update.
    pub fn train(&mut self, s: &SetSample, target: f64) -> f64 {
        let h = self.hidden;
        let (ct, pt) = Self::pool(&self.table_mlp, &s.tables, h);
        let (cj, pj) = Self::pool(&self.join_mlp, &s.joins, h);
        let (cp, pp) = Self::pool(&self.pred_mlp, &s.predicates, h);
        let mut concat = pt;
        concat.extend(pj);
        concat.extend(pp);
        let out_acts = self.out_mlp.forward_cached(&concat);
        let out = out_acts.last().expect("output")[0];
        let err = out - target;

        let grad_concat = self.out_mlp.backward(&out_acts, vec![2.0 * err]);
        // Split the concat gradient back to the pooled vectors and distribute
        // through the mean (each element receives grad / |set|).
        for (mlp, caches, offset) in [
            (&mut self.table_mlp, &ct, 0),
            (&mut self.join_mlp, &cj, h),
            (&mut self.pred_mlp, &cp, 2 * h),
        ] {
            if caches.is_empty() {
                continue;
            }
            let inv = 1.0 / caches.len() as f64;
            let grad_elem: Vec<f64> = grad_concat[offset..offset + h]
                .iter()
                .map(|g| g * inv)
                .collect();
            for acts in caches {
                mlp.backward(acts, grad_elem.clone());
            }
        }
        self.opt.step_many(&mut [
            &mut self.table_mlp,
            &mut self.join_mlp,
            &mut self.pred_mlp,
            &mut self.out_mlp,
        ]);
        err * err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy task: target = |tables| · 0.2 + mean(pred feature) · 0.5 — the net
    /// must use both set cardinality and element content.
    fn toy_sample(n_tables: usize, pred_val: f64) -> SetSample {
        SetSample {
            tables: (0..n_tables).map(|i| vec![1.0, i as f64 / 4.0]).collect(),
            joins: (0..n_tables.saturating_sub(1))
                .map(|i| vec![i as f64 / 4.0])
                .collect(),
            predicates: vec![vec![pred_val, 1.0]],
        }
    }

    #[test]
    fn learns_set_dependent_targets() {
        let mut net = McsnNet::new(2, 1, 2, 16, 5e-3, 9);
        for _ in 0..300 {
            for nt in 1..=4usize {
                for pv in [0.0, 0.5, 1.0] {
                    let target = nt as f64 * 0.2 + pv * 0.5;
                    net.train(&toy_sample(nt, pv), target);
                }
            }
        }
        for nt in 1..=4usize {
            for pv in [0.0, 0.5, 1.0] {
                let target = nt as f64 * 0.2 + pv * 0.5;
                let got = net.predict(&toy_sample(nt, pv));
                assert!(
                    (got - target).abs() < 0.1,
                    "nt={nt} pv={pv}: {got} vs {target}"
                );
            }
        }
    }

    #[test]
    fn empty_sets_are_handled() {
        let net = McsnNet::new(2, 1, 2, 8, 1e-3, 1);
        let s = SetSample {
            tables: vec![vec![1.0, 0.0]],
            joins: vec![],
            predicates: vec![],
        };
        assert!(net.predict(&s).is_finite());
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = McsnNet::new(2, 1, 2, 8, 5e-3, 3);
        let s = toy_sample(2, 0.5);
        let first = net.train(&s, 1.0);
        let mut last = first;
        for _ in 0..200 {
            last = net.train(&s, 1.0);
        }
        assert!(last < first * 0.05, "loss {first} → {last}");
    }
}
