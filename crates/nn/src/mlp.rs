//! Dense layers, multi-layer perceptrons, and Adam.

use rand::rngs::StdRng;
use rand::Rng;

/// One fully-connected layer `y = act(Wx + b)` with ReLU or identity
/// activation and accumulated gradients.
#[derive(Debug, Clone)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    /// Row-major weights: `w[o * in_dim + i]`.
    w: Vec<f64>,
    b: Vec<f64>,
    relu: bool,
    // Accumulated gradients (cleared by the optimizer step).
    gw: Vec<f64>,
    gb: Vec<f64>,
}

impl Dense {
    /// He-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim.max(1) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| {
                // Box-Muller normal draw.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            relu,
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    /// Forward pass; returns post-activation output.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut out = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut v = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                v += wi * xi;
            }
            out.push(if self.relu { v.max(0.0) } else { v });
        }
        out
    }

    /// Backward pass: accumulate parameter gradients and return ∂L/∂x.
    /// `x` and `y` are the cached forward input/output.
    pub fn backward(&mut self, x: &[f64], y: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            // ReLU gate: output 0 ⇒ dead unit (y > 0 iff pre-activation > 0).
            let g = if self.relu && y[o] <= 0.0 {
                0.0
            } else {
                grad_out[o]
            };
            if g == 0.0 {
                continue;
            }
            self.gb[o] += g;
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                grad_in[i] += g * row[i];
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// A plain MLP: a stack of [`Dense`] layers (ReLU on all but the last).
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build with the given layer sizes, e.g. `[8, 32, 32, 1]`.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(w[0], w[1], i + 2 < sizes.len(), rng))
            .collect();
        Self { layers }
    }

    /// Forward pass returning all intermediate activations (inputs first).
    pub fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward from output gradient through all layers; returns ∂L/∂x.
    pub fn backward(&mut self, acts: &[Vec<f64>], grad_out: Vec<f64>) -> Vec<f64> {
        let mut grad = grad_out;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[i], &acts[i + 1], &grad);
        }
        grad
    }

    /// One SGD-style training pair with MSE loss via the supplied optimizer.
    /// Returns the squared error.
    pub fn train_mse(&mut self, x: &[f64], target: f64, opt: &mut Adam) -> f64 {
        let acts = self.forward_cached(x);
        let out = acts.last().expect("output")[0];
        let err = out - target;
        self.backward(&acts, vec![2.0 * err]);
        opt.step(self);
        err * err
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }
}

/// Adam optimizer state over one or more [`Mlp`]s' parameters.
///
/// State is keyed positionally, so always call [`Adam::step`] with the same
/// network.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply accumulated gradients of `net` and clear them.
    pub fn step(&mut self, net: &mut Mlp) {
        self.step_many(&mut [net]);
    }

    /// Apply accumulated gradients across several networks (shared step
    /// counter), clearing them.
    pub fn step_many(&mut self, nets: &mut [&mut Mlp]) {
        let total: usize = nets.iter().map(|n| n.param_count()).sum();
        if self.m.len() != total {
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut k = 0;
        let update = |p: &mut f64, g: &mut f64, m: &mut f64, v: &mut f64| {
            *m = beta1 * *m + (1.0 - beta1) * *g;
            *v = beta2 * *v + (1.0 - beta2) * *g * *g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
            *g = 0.0;
        };
        for net in nets.iter_mut() {
            for layer in &mut net.layers {
                for (p, g) in layer.w.iter_mut().zip(layer.gw.iter_mut()) {
                    update(p, g, &mut self.m[k], &mut self.v[k]);
                    k += 1;
                }
                for (p, g) in layer.b.iter_mut().zip(layer.gb.iter_mut()) {
                    update(p, g, &mut self.m[k], &mut self.v[k]);
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&[3, 8, 1], &mut rng);
        let y = mlp.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(y.len(), 1);
        assert!(y[0].is_finite());
    }

    #[test]
    fn analytic_gradient_matches_numerical() {
        let mut rng = seeded_rng(7);
        let mut mlp = Mlp::new(&[4, 6, 1], &mut rng);
        let x = [0.3, -0.5, 0.9, 0.1];
        let target = 0.7;

        // Analytic gradients.
        let acts = mlp.forward_cached(&x);
        let out = acts.last().unwrap()[0];
        mlp.backward(&acts, vec![2.0 * (out - target)]);
        let analytic: Vec<f64> = mlp
            .layers
            .iter()
            .flat_map(|l| l.gw.iter().chain(l.gb.iter()).copied().collect::<Vec<_>>())
            .collect();

        // Numerical gradients via central differences.
        let loss = |m: &Mlp| {
            let o = m.forward(&x)[0];
            (o - target) * (o - target)
        };
        let eps = 1e-6;
        let mut k = 0;
        for li in 0..mlp.layers.len() {
            let nw = mlp.layers[li].w.len();
            let nb = mlp.layers[li].b.len();
            for pi in 0..nw + nb {
                let read = |m: &Mlp, i: usize| {
                    if i < nw {
                        m.layers[li].w[i]
                    } else {
                        m.layers[li].b[i - nw]
                    }
                };
                let write = |m: &mut Mlp, i: usize, v: f64| {
                    if i < nw {
                        m.layers[li].w[i] = v;
                    } else {
                        m.layers[li].b[i - nw] = v;
                    }
                };
                let orig = read(&mlp, pi);
                write(&mut mlp, pi, orig + eps);
                let lp = loss(&mlp);
                write(&mut mlp, pi, orig - eps);
                let lm = loss(&mlp);
                write(&mut mlp, pi, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic[k]).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "param {k}: numeric {numeric} vs analytic {}",
                    analytic[k]
                );
                k += 1;
            }
        }
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = seeded_rng(3);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let mut opt = Adam::new(5e-3);
        let mut last = f64::INFINITY;
        for epoch in 0..40 {
            let mut total = 0.0;
            for i in 0..200 {
                let a = ((i * 13) % 40) as f64 / 20.0 - 1.0;
                let b = ((i * 29) % 40) as f64 / 20.0 - 1.0;
                total += mlp.train_mse(&[a, b], 0.5 * a - 0.3 * b + 0.1, &mut opt);
            }
            last = total / 200.0;
            if epoch == 0 {
                assert!(last > 1e-4, "should not start converged");
            }
        }
        assert!(last < 5e-3, "final MSE {last}");
    }

    #[test]
    fn learns_xor_nonlinearity() {
        let mut rng = seeded_rng(11);
        let mut mlp = Mlp::new(&[2, 12, 12, 1], &mut rng);
        let mut opt = Adam::new(1e-2);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..800 {
            for (x, t) in &data {
                mlp.train_mse(x, *t, &mut opt);
            }
        }
        for (x, t) in &data {
            let y = mlp.forward(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }
}
