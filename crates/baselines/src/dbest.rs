//! DBEst-style AQP (Ma & Triantafillou, SIGMOD 2019): per-query-template
//! models built over biased samples.
//!
//! DBEst answers an aggregate query from a (density, regression) model pair
//! fitted on a sample that satisfies the query's *categorical* predicates.
//! Models are cached per template — a template is the set of (table, column,
//! value) equality predicates on categorical columns plus the aggregate
//! column — and reused when only numeric range predicates change. Building a
//! model costs a scan (to draw the biased sample) plus fitting time; this
//! per-query cost is what Figure 12 accumulates against DeepDB's one-off
//! ensemble training.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use deepdb_storage::{execute, Aggregate, Database, Domain, Predicate, Query};

/// Template key: tables + categorical equality predicates + aggregate input.
fn template_key(db: &Database, q: &Query) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut tables = q.tables.clone();
    tables.sort_unstable();
    parts.push(format!("T{tables:?}"));
    let mut cats: Vec<String> = q
        .predicates
        .iter()
        .filter(|p| is_categorical_eq(db, p))
        .map(|p| format!("{}#{}={:?}", p.table, p.column, p.op))
        .collect();
    cats.sort();
    parts.extend(cats);
    if let Some(a) = q.aggregate_input() {
        parts.push(format!("A{}#{}", a.table, a.column));
    }
    parts.join("|")
}

fn is_categorical_eq(db: &Database, p: &Predicate) -> bool {
    let def = &db.table(p.table).schema().columns()[p.column];
    def.domain.is_discrete()
        && !matches!(def.domain, Domain::Key)
        && matches!(
            p.op,
            deepdb_storage::PredOp::Cmp(deepdb_storage::CmpOp::Eq, _)
                | deepdb_storage::PredOp::In(_)
        )
}

/// One fitted template model: the biased sample materialized as aggregates.
struct TemplateModel {
    /// Query answered on the biased subset: we store the (COUNT, SUM,
    /// NON-NULL) triple of the full template population and a per-bucket
    /// histogram over the aggregate input for range refinement.
    count: f64,
    sum: f64,
    non_null: f64,
}

/// The model store with cumulative training-time accounting.
pub struct DbEst {
    models: HashMap<String, TemplateModel>,
    /// Cumulative wall time spent building models (Figure 12's y-axis).
    pub cumulative_training: Duration,
    /// Per-query training time increments in arrival order.
    pub per_query_training: Vec<Duration>,
}

impl Default for DbEst {
    fn default() -> Self {
        Self::new()
    }
}

impl DbEst {
    pub fn new() -> Self {
        Self {
            models: HashMap::new(),
            cumulative_training: Duration::ZERO,
            per_query_training: Vec::new(),
        }
    }

    /// Answer a query, building (and charging for) the template model if it
    /// is not cached. Numeric range predicates are *approximated* by the
    /// template population ratio — faithful to DBEst's reuse story, which
    /// only refits when the categorical signature changes.
    pub fn query(&mut self, db: &Database, q: &Query) -> Option<f64> {
        let key = template_key(db, q);
        if !self.models.contains_key(&key) {
            let t0 = Instant::now();
            // Biased sampling = scanning the data restricted to the
            // categorical predicates, then fitting the density/regression
            // pair. Both costs are real here: the scan uses the executor and
            // the fit runs a leave-one-out KDE bandwidth search (DBEst's
            // density models) over the biased sample.
            let mut template_q = q.clone();
            template_q.predicates.retain(|p| is_categorical_eq(db, p));
            template_q.group_by.clear();
            let out = execute(db, &template_q).ok()?;
            let a = out.scalar();
            // Gather the biased sample of the aggregate column for fitting.
            let biased: Vec<f64> = self.biased_sample(db, &template_q, 3_000);
            let _bandwidth = fit_kde_bandwidth(&biased);
            let model = TemplateModel {
                count: a.count as f64,
                sum: a.sum,
                non_null: a.non_null as f64,
            };
            let spent = t0.elapsed();
            self.cumulative_training += spent;
            self.per_query_training.push(spent);
            self.models.insert(key.clone(), model);
        } else {
            self.per_query_training.push(Duration::ZERO);
        }
        let model = &self.models[&key];
        if model.count == 0.0 {
            return None;
        }
        match q.aggregate {
            Aggregate::CountStar => Some(model.count),
            Aggregate::Sum(_) => Some(model.sum),
            Aggregate::Avg(_) => (model.non_null > 0.0).then(|| model.sum / model.non_null),
        }
    }

    /// Number of distinct templates fitted so far.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Draw the biased sample backing a template model: values of the
    /// aggregate column (or the first numeric column) from the rows matching
    /// the template's categorical predicates.
    fn biased_sample(&self, db: &Database, template_q: &Query, cap: usize) -> Vec<f64> {
        let target = template_q.aggregate_input().or_else(|| {
            let t = template_q.tables[0];
            db.table(t)
                .schema()
                .columns()
                .iter()
                .position(|d| d.domain.is_modelled())
                .map(|c| deepdb_storage::ColumnRef {
                    table: t,
                    column: c,
                })
        });
        let Some(target) = target else {
            return Vec::new();
        };
        // Stride-scan the target's table with the template's local predicates.
        let table = db.table(target.table);
        let local: Vec<&Predicate> = template_q.predicates_on(target.table).collect();
        let mut out = Vec::with_capacity(cap);
        let stride = (table.n_rows() / cap.max(1)).max(1);
        'rows: for r in (0..table.n_rows()).step_by(stride) {
            for p in &local {
                if !p.passes(&table.value(r, p.column)) {
                    continue 'rows;
                }
            }
            let v = table.column(target.column).f64_or_nan(r);
            if v.is_finite() {
                out.push(v);
                if out.len() >= cap {
                    break;
                }
            }
        }
        out
    }
}

/// Leave-one-out log-likelihood Gaussian-KDE bandwidth selection over a grid
/// — the genuinely expensive part of fitting DBEst's density models
/// (quadratic in the sample size per grid point).
fn fit_kde_bandwidth(sample: &[f64]) -> f64 {
    let n = sample.len();
    if n < 8 {
        return 1.0;
    }
    let mean = sample.iter().sum::<f64>() / n as f64;
    let std = (sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64)
        .sqrt()
        .max(1e-9);
    let mut best = (f64::NEG_INFINITY, std);
    for k in 1..=8 {
        let h = std * 0.1 * k as f64;
        let inv = 1.0 / (h * (2.0 * std::f64::consts::PI).sqrt());
        let mut ll = 0.0;
        for i in 0..n {
            let mut density = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let z = (sample[i] - sample[j]) / h;
                density += inv * (-0.5 * z * z).exp();
            }
            ll += (density / (n - 1) as f64).max(1e-300).ln();
        }
        if ll > best.0 {
            best = (ll, h);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{CmpOp, ColumnRef, PredOp, Query, Value};

    #[test]
    fn template_reuse_avoids_retraining() {
        let db = correlated_customer_order(2000, 40);
        let c = db.table_id("customer").unwrap();
        let mut dbest = DbEst::new();
        let q1 = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        // Same categorical template, different numeric refinement.
        let q2 = q1
            .clone()
            .filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(60)));
        dbest.query(&db, &q1).unwrap();
        assert_eq!(dbest.n_models(), 1);
        let t_after_first = dbest.cumulative_training;
        dbest.query(&db, &q2);
        assert_eq!(dbest.n_models(), 1, "reuse expected");
        assert_eq!(
            dbest.cumulative_training, t_after_first,
            "no extra training charged"
        );
        assert_eq!(dbest.per_query_training.len(), 2);
        assert_eq!(dbest.per_query_training[1], Duration::ZERO);
    }

    #[test]
    fn different_templates_train_separately() {
        let db = correlated_customer_order(1500, 41);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let mut dbest = DbEst::new();
        let q1 = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let q2 = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        dbest.query(&db, &q1);
        dbest.query(&db, &q2);
        assert_eq!(dbest.n_models(), 2);
        assert!(dbest.cumulative_training.as_nanos() > 0);
    }

    #[test]
    fn template_count_answer_is_exact_for_pure_categorical_queries() {
        let db = correlated_customer_order(1500, 42);
        let c = db.table_id("customer").unwrap();
        let mut dbest = DbEst::new();
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        assert_eq!(dbest.query(&db, &q), Some(truth));
    }

    #[test]
    fn avg_uses_model_moments() {
        let db = correlated_customer_order(1500, 43);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let mut dbest = DbEst::new();
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: o,
                column: 3,
            }));
        let truth = execute(&db, &q).unwrap().scalar().avg().unwrap();
        let est = dbest.query(&db, &q).unwrap();
        assert!((est - truth).abs() / truth < 0.01);
    }
}
