//! The workload-driven MCSN cardinality estimator (Kipf et al., CIDR 2019)
//! — the paper's learned baseline in Table 1 and Figures 1/7.
//!
//! Featurization follows the published model: a query becomes three sets —
//! one-hot table vectors, one-hot join-edge vectors, and predicate vectors
//! `(one-hot column ⧺ one-hot operator ⧺ min-max-normalized constant)`.
//! Training pairs are `(query, log-normalized true cardinality)`; collecting
//! them requires *executing* the workload, which is exactly the cost the
//! paper's data-driven approach avoids.

use std::time::Duration;

use deepdb_nn::{McsnNet, SetSample};
use deepdb_storage::{execute, CmpOp, ColId, Database, PredOp, Predicate, Query, TableId};

/// Featurization metadata frozen at training time.
#[derive(Debug, Clone)]
struct Featurizer {
    n_tables: usize,
    edges: Vec<(TableId, TableId)>,
    /// Global predicate-column index and min/max per (table, col).
    columns: Vec<(TableId, ColId, f64, f64)>,
}

impl Featurizer {
    fn new(db: &Database) -> Self {
        let edges = db
            .foreign_keys()
            .iter()
            .map(|fk| (fk.parent_table, fk.child_table))
            .collect();
        let mut columns = Vec::new();
        for t in 0..db.n_tables() {
            let table = db.table(t);
            for (c, def) in table.schema().columns().iter().enumerate() {
                if !def.domain.is_modelled() {
                    continue;
                }
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for r in 0..table.n_rows() {
                    let v = table.column(c).f64_or_nan(r);
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if !lo.is_finite() {
                    lo = 0.0;
                    hi = 1.0;
                }
                columns.push((t, c, lo, hi.max(lo + 1e-9)));
            }
        }
        Self {
            n_tables: db.n_tables(),
            edges,
            columns,
        }
    }

    fn table_dim(&self) -> usize {
        self.n_tables
    }
    fn join_dim(&self) -> usize {
        self.edges.len().max(1)
    }
    fn pred_dim(&self) -> usize {
        self.columns.len() + 7 + 1 // column one-hot ⧺ op one-hot ⧺ value
    }

    fn featurize(&self, db: &Database, q: &Query) -> SetSample {
        let mut s = SetSample::default();
        for &t in &q.tables {
            let mut v = vec![0.0; self.n_tables];
            v[t] = 1.0;
            s.tables.push(v);
        }
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            let joined =
                q.tables.contains(&a) && q.tables.contains(&b) && db.edge_between(a, b).is_some();
            if joined {
                let mut v = vec![0.0; self.join_dim()];
                v[i] = 1.0;
                s.joins.push(v);
            }
        }
        for p in &q.predicates {
            s.predicates.push(self.featurize_pred(p));
        }
        s
    }

    fn featurize_pred(&self, p: &Predicate) -> Vec<f64> {
        let mut v = vec![0.0; self.pred_dim()];
        let col_idx = self
            .columns
            .iter()
            .position(|&(t, c, _, _)| t == p.table && c == p.column);
        let (lo, hi) = col_idx
            .map(|i| (self.columns[i].2, self.columns[i].3))
            .unwrap_or((0.0, 1.0));
        if let Some(i) = col_idx {
            v[i] = 1.0;
        }
        let base = self.columns.len();
        // Operator one-hot: Eq, Ne, Lt, Le, Gt, Ge, other(In/Between/IsNull).
        let (op_slot, value) = match &p.op {
            PredOp::Cmp(CmpOp::Eq, c) => (0, c.as_f64()),
            PredOp::Cmp(CmpOp::Ne, c) => (1, c.as_f64()),
            PredOp::Cmp(CmpOp::Lt, c) => (2, c.as_f64()),
            PredOp::Cmp(CmpOp::Le, c) => (3, c.as_f64()),
            PredOp::Cmp(CmpOp::Gt, c) => (4, c.as_f64()),
            PredOp::Cmp(CmpOp::Ge, c) => (5, c.as_f64()),
            PredOp::In(vs) => (6, vs.first().and_then(|v| v.as_f64())),
            PredOp::Between(a, _) => (6, a.as_f64()),
            PredOp::IsNull | PredOp::IsNotNull => (6, None),
        };
        v[base + op_slot] = 1.0;
        v[base + 7] = value.map_or(0.5, |x| ((x - lo) / (hi - lo)).clamp(0.0, 1.0));
        v
    }
}

/// The trained estimator.
pub struct Mcsn {
    net: McsnNet,
    feat: Featurizer,
    max_log: f64,
    /// Wall time spent collecting training labels (executing queries).
    pub label_collection_time: Duration,
    /// Wall time spent in gradient descent.
    pub training_time: Duration,
}

impl Mcsn {
    /// Train on a workload. Labels (true cardinalities) are computed here by
    /// actually executing every query — the cost Table 1's "training time"
    /// row charges to workload-driven approaches.
    pub fn train(db: &Database, training_queries: &[Query], epochs: usize, seed: u64) -> Self {
        let feat = Featurizer::new(db);
        let t0 = std::time::Instant::now();
        let labels: Vec<f64> = training_queries
            .iter()
            .map(|q| {
                execute(db, q)
                    .map_or(1.0, |o| o.scalar().count as f64)
                    .max(1.0)
            })
            .collect();
        let label_collection_time = t0.elapsed();

        let max_log = labels.iter().map(|c| c.ln()).fold(1.0f64, f64::max);
        let samples: Vec<(SetSample, f64)> = training_queries
            .iter()
            .zip(&labels)
            .map(|(q, c)| (feat.featurize(db, q), c.ln() / max_log))
            .collect();

        let t1 = std::time::Instant::now();
        let mut net = McsnNet::new(
            feat.table_dim(),
            feat.join_dim(),
            feat.pred_dim(),
            32,
            1e-3,
            seed,
        );
        for _ in 0..epochs {
            for (s, y) in &samples {
                net.train(s, *y);
            }
        }
        let training_time = t1.elapsed();
        Self {
            net,
            feat,
            max_log,
            label_collection_time,
            training_time,
        }
    }

    /// Cardinality estimate (≥ 1).
    pub fn estimate(&self, db: &Database, q: &Query) -> f64 {
        let s = self.feat.featurize(db, q);
        let y = self.net.predict(&s);
        (y * self.max_log).exp().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::Value;

    fn workload(db: &Database, n: usize, seed: u64) -> Vec<Query> {
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let mut out = Vec::new();
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let mut q = if rnd() < 0.5 {
                Query::count(vec![c])
            } else {
                Query::count(vec![c, o])
            };
            if rnd() < 0.8 {
                let age = 20 + (rnd() * 60.0) as i64;
                let op = if rnd() < 0.5 {
                    PredOp::Cmp(CmpOp::Ge, Value::Int(age))
                } else {
                    PredOp::Cmp(CmpOp::Lt, Value::Int(age))
                };
                q = q.filter(c, 1, op);
            }
            if rnd() < 0.5 {
                q = q.filter(
                    c,
                    2,
                    PredOp::Cmp(CmpOp::Eq, Value::Int((rnd() * 3.0) as i64)),
                );
            }
            if q.tables.len() == 2 && rnd() < 0.5 {
                q = q.filter(
                    o,
                    2,
                    PredOp::Cmp(CmpOp::Eq, Value::Int((rnd() * 2.0) as i64)),
                );
            }
            out.push(q);
        }
        out
    }

    #[test]
    fn trained_model_beats_wild_guessing_in_distribution() {
        let db = correlated_customer_order(1500, 11);
        let train = workload(&db, 300, 1);
        let test = workload(&db, 60, 2);
        let mcsn = Mcsn::train(&db, &train, 40, 7);
        let mut qerrs: Vec<f64> = test
            .iter()
            .map(|q| {
                let truth = execute(&db, q).unwrap().scalar().count as f64;
                let est = mcsn.estimate(&db, q);
                (est / truth.max(1.0)).max(truth.max(1.0) / est)
            })
            .collect();
        qerrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = qerrs[qerrs.len() / 2];
        assert!(median < 3.0, "median q-error {median}");
    }

    #[test]
    fn featurization_dimensions_are_stable() {
        let db = correlated_customer_order(200, 3);
        let feat = Featurizer::new(&db);
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(30)));
        let s = feat.featurize(&db, &q);
        assert_eq!(s.tables.len(), 1);
        assert_eq!(s.predicates.len(), 1);
        assert_eq!(s.predicates[0].len(), feat.pred_dim());
        assert!(s.joins.is_empty());
    }

    #[test]
    fn timers_are_populated() {
        let db = correlated_customer_order(300, 5);
        let train = workload(&db, 50, 4);
        let mcsn = Mcsn::train(&db, &train, 5, 3);
        assert!(mcsn.label_collection_time.as_nanos() > 0);
        assert!(mcsn.training_time.as_nanos() > 0);
    }
}
