//! CART regression tree (variance-reduction splits) — the "Regression Tree"
//! baseline of Figure 13.

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_leaf: usize,
    /// Candidate thresholds per feature (quantile grid).
    pub candidates: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_leaf: 20,
            candidates: 24,
        }
    }
}

impl RegressionTree {
    /// Fit on row-major features `x` and targets `y` (NaN features are sent
    /// to the left branch).
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: TreeParams) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let mut tree = Self { nodes: Vec::new() };
        let rows: Vec<u32> = (0..x.len() as u32).collect();
        tree.build(x, y, &rows, params, 0);
        tree
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[u32],
        params: TreeParams,
        depth: usize,
    ) -> usize {
        let mean = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|&r| y[r as usize]).sum::<f64>() / rows.len() as f64
        };
        if depth >= params.max_depth || rows.len() < 2 * params.min_leaf {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = best_split(x, y, rows, params) else {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (lrows, rrows): (Vec<u32>, Vec<u32>) = rows
            .iter()
            // NaN features must train left, matching inference (`v > t` is
            // false for NaN, so predict() descends left on NULLs).
            .partition(|&&r| {
                let v = x[r as usize][feature];
                v <= threshold || v.is_nan()
            });
        if lrows.len() < params.min_leaf || rrows.len() < params.min_leaf {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let idx = self.nodes.len();
        self.nodes.push(TreeNode::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let left = self.build(x, y, &lrows, params, depth + 1);
        let right = self.build(x, y, &rrows, params, depth + 1);
        if let TreeNode::Split {
            left: l, right: r, ..
        } = &mut self.nodes[idx]
        {
            *l = left;
            *r = right;
        }
        idx
    }

    /// Predict one row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        // Root is node 0 unless the tree degenerated to a single leaf chain;
        // build() always pushes the root first.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if features[*feature] > *threshold {
                        *right
                    } else {
                        *left
                    };
                }
            }
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Best (feature, threshold) by SSE reduction over a quantile grid.
fn best_split(x: &[Vec<f64>], y: &[f64], rows: &[u32], params: TreeParams) -> Option<(usize, f64)> {
    let n_features = x.first()?.len();
    let total_sum: f64 = rows.iter().map(|&r| y[r as usize]).sum();
    let total_sq: f64 = rows.iter().map(|&r| y[r as usize] * y[r as usize]).sum();
    let n = rows.len() as f64;
    let base_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(f64, usize, f64)> = None;
    #[allow(clippy::needless_range_loop)]
    for f in 0..n_features {
        let mut vals: Vec<f64> = rows
            .iter()
            .map(|&r| x[r as usize][f])
            .filter(|v| v.is_finite())
            .collect();
        if vals.len() < 2 {
            continue;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for k in 1..=params.candidates {
            let q = k * (vals.len() - 1) / (params.candidates + 1);
            let threshold = vals[q];
            let (mut ls, mut lq, mut ln) = (0.0, 0.0, 0.0);
            let (mut rs, mut rq, mut rn) = (0.0, 0.0, 0.0);
            for &r in rows {
                let v = y[r as usize];
                if x[r as usize][f] > threshold {
                    rs += v;
                    rq += v * v;
                    rn += 1.0;
                } else {
                    ls += v;
                    lq += v * v;
                    ln += 1.0;
                }
            }
            if ln < params.min_leaf as f64 || rn < params.min_leaf as f64 {
                continue;
            }
            let sse = (lq - ls * ls / ln) + (rq - rs * rs / rn);
            let gain = base_sse - sse;
            if gain > 1e-9 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let mut rng = lcg(1);
        let x: Vec<Vec<f64>> = (0..500).map(|_| vec![rng()]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] > 0.5 { 10.0 } else { -10.0 })
            .collect();
        let tree = RegressionTree::fit(&x, &y, TreeParams::default());
        assert!((tree.predict(&[0.1]) + 10.0).abs() < 0.5);
        assert!((tree.predict(&[0.9]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn reduces_rmse_vs_mean_predictor_on_linear_data() {
        let mut rng = lcg(7);
        let x: Vec<Vec<f64>> = (0..800).map(|_| vec![rng(), rng()]).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] - 2.0 * v[1]).collect();
        let tree = RegressionTree::fit(&x, &y, TreeParams::default());
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let rmse_tree = (x
            .iter()
            .zip(&y)
            .map(|(v, t)| (tree.predict(v) - t).powi(2))
            .sum::<f64>()
            / y.len() as f64)
            .sqrt();
        let rmse_mean = (y.iter().map(|t| (mean - t).powi(2)).sum::<f64>() / y.len() as f64).sqrt();
        assert!(rmse_tree < rmse_mean * 0.5, "{rmse_tree} vs {rmse_mean}");
    }

    #[test]
    fn respects_min_leaf() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                max_depth: 10,
                min_leaf: 15,
                candidates: 8,
            },
        );
        // Only one split is possible with min_leaf 15 on 30 rows.
        assert!(tree.n_nodes() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 100];
        let tree = RegressionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[50.0]), 5.0);
    }
}
