//! Wander Join (Li et al., SIGMOD 2016): online aggregation over joins via
//! index random walks with Horvitz–Thompson reweighting.
//!
//! Each walk starts from a random fact-table row and follows the join tree
//! through indexes, picking one partner uniformly at each step and
//! multiplying the weight by the partner count. Predicates are evaluated on
//! the walked tuples. COUNT/SUM are estimated as `|fact| · mean(weight·v)`;
//! AVG as the ratio of the SUM and COUNT estimators. A walk budget plays the
//! role of the paper's time bound.

use std::time::{Duration, Instant};

use deepdb_storage::{Aggregate, Database, Indexes, Query, TableId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct WanderJoin<'a> {
    db: &'a Database,
    indexes: &'a Indexes,
    /// Number of random walks per query (the time budget).
    pub walks: usize,
    rng: StdRng,
}

impl<'a> WanderJoin<'a> {
    pub fn new(db: &'a Database, indexes: &'a Indexes, walks: usize, seed: u64) -> Self {
        Self {
            db,
            indexes,
            walks,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Scalar estimate (`None` when no walk qualifies) plus per-group
    /// estimates for GROUP BY queries, plus latency.
    #[allow(clippy::type_complexity)]
    pub fn query(
        &mut self,
        query: &Query,
    ) -> (Option<f64>, Vec<(Vec<Value>, Option<f64>)>, Duration) {
        let t0 = Instant::now();
        // Walk order: fact table (FK child of all others) first.
        let fact = *query
            .tables
            .iter()
            .find(|&&t| {
                query.tables.iter().all(|&u| {
                    u == t
                        || self
                            .db
                            .edge_between(t, u)
                            .is_some_and(|fk| fk.child_table == t)
                })
            })
            .unwrap_or(&query.tables[0]);
        let fact_table = self.db.table(fact);
        if fact_table.n_rows() == 0 {
            return (None, Vec::new(), t0.elapsed());
        }
        let dims: Vec<(TableId, usize)> = query
            .tables
            .iter()
            .filter(|&&t| t != fact)
            .filter_map(|&t| self.db.edge_between(fact, t).map(|fk| (t, fk.child_col)))
            .collect();
        let agg = query.aggregate_input();

        let mut qualifying = 0usize;
        let mut w_count = 0.0; // Σ weight·1
        let mut w_sum = 0.0; // Σ weight·value
        let mut groups: std::collections::HashMap<Vec<Value>, (f64, f64, f64)> =
            std::collections::HashMap::new();

        'walks: for _ in 0..self.walks {
            let r = self.rng.gen_range(0..fact_table.n_rows());
            // Fact-to-dimension steps are unique PK lookups: weight 1 each.
            for p in query.predicates_on(fact) {
                if !p.passes(&fact_table.value(r, p.column)) {
                    continue 'walks;
                }
            }
            let mut dim_rows: Vec<(TableId, usize)> = Vec::with_capacity(dims.len());
            for &(t, child_col) in &dims {
                let Some(key) = fact_table.column(child_col).i64_at(r) else {
                    continue 'walks;
                };
                let Some(dr) = self.indexes.pk_lookup(t, key) else {
                    continue 'walks;
                };
                let dr = dr as usize;
                for p in query.predicates_on(t) {
                    if !p.passes(&self.db.table(t).value(dr, p.column)) {
                        continue 'walks;
                    }
                }
                dim_rows.push((t, dr));
            }
            qualifying += 1;
            let value_at = |table: TableId, col: usize| -> Value {
                if table == fact {
                    fact_table.value(r, col)
                } else {
                    let &(_, dr) = dim_rows.iter().find(|&&(t, _)| t == table).expect("walked");
                    self.db.table(table).value(dr, col)
                }
            };
            let (v, has) = match agg.map(|c| value_at(c.table, c.column)) {
                Some(val) => (val.as_f64().unwrap_or(0.0), val.as_f64().is_some()),
                None => (0.0, false),
            };
            if query.group_by.is_empty() {
                w_count += 1.0;
                if has {
                    w_sum += v;
                }
            } else {
                let key: Vec<Value> = query
                    .group_by
                    .iter()
                    .map(|g| value_at(g.table, g.column))
                    .collect();
                let e = groups.entry(key).or_default();
                e.0 += 1.0;
                if has {
                    e.1 += v;
                    e.2 += 1.0;
                }
            }
        }

        let scale = fact_table.n_rows() as f64 / self.walks as f64;
        let finish = |c: f64, s: f64, nn: f64| -> Option<f64> {
            if c == 0.0 {
                return None;
            }
            match query.aggregate {
                Aggregate::CountStar => Some(c * scale),
                Aggregate::Sum(_) => Some(s * scale),
                Aggregate::Avg(_) => (nn > 0.0).then_some(s / nn),
            }
        };
        let scalar = if qualifying == 0 {
            None
        } else {
            finish(w_count, w_sum, w_count)
        };
        let mut grouped: Vec<(Vec<Value>, Option<f64>)> = groups
            .into_iter()
            .map(|(k, (c, s, nn))| (k, finish(c, s, nn)))
            .collect();
        grouped.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        (scalar, grouped, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{execute, CmpOp, ColumnRef, PredOp, Predicate};

    #[test]
    fn count_estimates_converge() {
        let db = correlated_customer_order(2500, 30);
        let idx = Indexes::build(&db);
        let mut wj = WanderJoin::new(&db, &idx, 20_000, 1);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![o, c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let (est, _, _) = wj.query(&q);
        let rel = (est.unwrap() - truth).abs() / truth;
        assert!(rel < 0.15, "rel {rel}");
    }

    #[test]
    fn sum_and_avg_estimates() {
        let db = correlated_customer_order(2500, 31);
        let idx = Indexes::build(&db);
        let mut wj = WanderJoin::new(&db, &idx, 20_000, 2);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let amount = ColumnRef {
            table: o,
            column: 3,
        };
        let q = Query {
            tables: vec![o, c],
            predicates: vec![Predicate::new(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))],
            aggregate: Aggregate::Sum(amount),
            group_by: vec![],
        };
        let truth = execute(&db, &q).unwrap().scalar().sum;
        let (est, _, _) = wj.query(&q);
        let rel = (est.unwrap() - truth).abs() / truth;
        assert!(rel < 0.15, "SUM rel {rel}");
    }

    #[test]
    fn hopeless_selectivity_returns_none() {
        let db = correlated_customer_order(400, 32);
        let idx = Indexes::build(&db);
        let mut wj = WanderJoin::new(&db, &idx, 100, 3);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![o, c]).filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(499.99)));
        let (est, _, _) = wj.query(&q);
        assert!(est.is_none());
    }
}
