//! `TABLESAMPLE`-style AQP: per-query Bernoulli sampling of the fact
//! table(s), as with Postgres' `TABLESAMPLE BERNOULLI` — no precomputation,
//! the sampling scan is part of the query latency.

use std::time::{Duration, Instant};

use deepdb_storage::{Aggregate, Database, Indexes, Predicate, Query, TableId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scalar or grouped approximate answer.
pub struct TableSample<'a> {
    db: &'a Database,
    indexes: Indexes,
    pub rate: f64,
    rng: StdRng,
}

impl<'a> TableSample<'a> {
    pub fn new(db: &'a Database, rate: f64, seed: u64) -> Self {
        Self {
            db,
            indexes: Indexes::build(db),
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Fact table of a query: the FK child among the joined tables (or the
    /// single table).
    fn fact_table(&self, query: &Query) -> TableId {
        *query
            .tables
            .iter()
            .find(|&&t| {
                query.tables.iter().all(|&u| {
                    u == t
                        || self
                            .db
                            .edge_between(t, u)
                            .is_some_and(|fk| fk.child_table == t)
                })
            })
            .unwrap_or(&query.tables[0])
    }

    /// Approximate the aggregate by scanning a Bernoulli sample of the fact
    /// table, joining each sampled row to its dimension rows through PK
    /// indexes. Returns `(scalar, groups, latency)`; scalar is `None` when no
    /// sampled row qualifies.
    #[allow(clippy::type_complexity)]
    pub fn query(
        &mut self,
        query: &Query,
    ) -> (Option<f64>, Vec<(Vec<Value>, Option<f64>)>, Duration) {
        let t0 = Instant::now();
        let fact = self.fact_table(query);
        let fact_table = self.db.table(fact);
        let scale = 1.0 / self.rate.max(1e-12);

        // Resolve each non-fact table's FK edge from the fact table.
        let dims: Vec<(TableId, usize, usize)> = query
            .tables
            .iter()
            .filter(|&&t| t != fact)
            .map(|&t| {
                let fk = self
                    .db
                    .edge_between(fact, t)
                    .expect("snowflake queries join the fact to each dimension");
                (t, fk.child_col, fk.parent_col)
            })
            .collect();

        let fact_preds: Vec<&Predicate> = query.predicates_on(fact).collect();
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut non_null = 0u64;
        let mut groups: std::collections::HashMap<Vec<Value>, (u64, f64, u64)> =
            std::collections::HashMap::new();
        let agg = query.aggregate_input();

        'rows: for r in 0..fact_table.n_rows() {
            if self.rng.gen::<f64>() >= self.rate {
                continue;
            }
            for p in &fact_preds {
                if !p.passes(&fact_table.value(r, p.column)) {
                    continue 'rows;
                }
            }
            // Join to dimensions and apply their predicates.
            let mut dim_rows: Vec<(TableId, usize)> = Vec::with_capacity(dims.len());
            for &(t, child_col, _) in &dims {
                let Some(key) = fact_table.column(child_col).i64_at(r) else {
                    continue 'rows;
                };
                let Some(dr) = self.indexes.pk_lookup(t, key) else {
                    continue 'rows;
                };
                let dr = dr as usize;
                for p in query.predicates_on(t) {
                    if !p.passes(&self.db.table(t).value(dr, p.column)) {
                        continue 'rows;
                    }
                }
                dim_rows.push((t, dr));
            }
            let value_at = |table: TableId, col: usize| -> Value {
                if table == fact {
                    fact_table.value(r, col)
                } else {
                    let &(_, dr) = dim_rows.iter().find(|&&(t, _)| t == table).expect("joined");
                    self.db.table(table).value(dr, col)
                }
            };
            let av = agg.map(|c| value_at(c.table, c.column));
            let (avf, is_num) = match av {
                Some(v) => (v.as_f64().unwrap_or(0.0), v.as_f64().is_some()),
                None => (0.0, false),
            };
            if query.group_by.is_empty() {
                count += 1;
                if is_num {
                    sum += avf;
                    non_null += 1;
                }
            } else {
                let key: Vec<Value> = query
                    .group_by
                    .iter()
                    .map(|g| value_at(g.table, g.column))
                    .collect();
                let e = groups.entry(key).or_default();
                e.0 += 1;
                if is_num {
                    e.1 += avf;
                    e.2 += 1;
                }
            }
        }

        let finish = |count: u64, sum: f64, non_null: u64| -> Option<f64> {
            if count == 0 {
                return None;
            }
            match query.aggregate {
                Aggregate::CountStar => Some(count as f64 * scale),
                Aggregate::Sum(_) => Some(sum * scale),
                Aggregate::Avg(_) => (non_null > 0).then(|| sum / non_null as f64),
            }
        };
        let scalar = finish(count, sum, non_null);
        let mut grouped: Vec<(Vec<Value>, Option<f64>)> = groups
            .into_iter()
            .map(|(k, (c, s, nn))| (k, finish(c, s, nn)))
            .collect();
        grouped.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        (scalar, grouped, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{execute, CmpOp, ColumnRef, PredOp};

    #[test]
    fn count_estimate_scales_correctly() {
        let db = correlated_customer_order(3000, 20);
        let mut ts = TableSample::new(&db, 0.3, 1);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let (est, _, lat) = ts.query(&q);
        let rel = (est.unwrap() - truth).abs() / truth;
        assert!(rel < 0.2, "rel {rel}");
        assert!(lat.as_nanos() > 0);
    }

    #[test]
    fn groups_are_estimated() {
        let db = correlated_customer_order(2500, 21);
        let mut ts = TableSample::new(&db, 0.4, 2);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .aggregate(Aggregate::Avg(ColumnRef {
                table: o,
                column: 3,
            }))
            .group(c, 2);
        let truth = execute(&db, &q).unwrap();
        let (_, groups, _) = ts.query(&q);
        assert_eq!(groups.len(), truth.groups().len());
        for (key, est) in &groups {
            let t = truth
                .groups()
                .iter()
                .find(|(k, _)| k == key)
                .unwrap()
                .1
                .avg()
                .unwrap();
            let rel = (est.unwrap() - t).abs() / t;
            assert!(rel < 0.25, "group {key:?} rel {rel}");
        }
    }

    #[test]
    fn selective_query_yields_none() {
        let db = correlated_customer_order(300, 22);
        let mut ts = TableSample::new(&db, 0.01, 3);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(499.9)));
        let (est, _, _) = ts.query(&q);
        assert!(est.is_none());
    }
}
