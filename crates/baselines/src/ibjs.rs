//! Index-Based Join Sampling (Leis et al., CIDR 2017).
//!
//! Estimates join cardinalities by sampling tuples from a base table and
//! extending each sample through secondary indexes along the join tree. Each
//! walk carries a Horvitz–Thompson weight: at every step the matching
//! partners that pass the local predicates are counted, one is chosen
//! uniformly, and the weight is multiplied by the count. The mean walk
//! weight times the base-table size is an unbiased estimate of the join
//! size.

use deepdb_storage::{Database, Indexes, Predicate, Query, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The estimator: holds the prebuilt indexes (the "secondary indexes" the
/// algorithm exploits).
pub struct Ibjs<'a> {
    db: &'a Database,
    indexes: &'a Indexes,
    /// Number of random walks per estimate.
    pub walks: usize,
    rng: StdRng,
}

impl<'a> Ibjs<'a> {
    pub fn new(db: &'a Database, indexes: &'a Indexes, walks: usize, seed: u64) -> Self {
        Self {
            db,
            indexes,
            walks,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Cardinality estimate (≥ 1, the q-error convention).
    pub fn estimate(&mut self, query: &Query) -> f64 {
        let Some(plan) = WalkPlan::new(self.db, query) else {
            return 1.0;
        };
        let base = self.db.table(plan.order[0]);
        if base.n_rows() == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for _ in 0..self.walks {
            total += self.one_walk(&plan, query);
        }
        (base.n_rows() as f64 * total / self.walks as f64).max(1.0)
    }

    fn one_walk(&mut self, plan: &WalkPlan, query: &Query) -> f64 {
        let base_table = plan.order[0];
        let base = self.db.table(base_table);
        let row = self.rng.gen_range(0..base.n_rows());
        if !passes(self.db, query, base_table, row) {
            return 0.0;
        }
        let mut weight = 1.0;
        let mut rows: Vec<usize> = vec![0; plan.order.len()];
        rows[0] = row;
        for (level, step) in plan.steps.iter().enumerate() {
            let from_row = rows[step.from_level];
            let from_table = plan.order[step.from_level];
            let Some(key) = self
                .db
                .table(from_table)
                .column(step.probe_col)
                .i64_at(from_row)
            else {
                return 0.0;
            };
            let table = plan.order[level + 1];
            // Matching rows via the index (children) or PK lookup (parent).
            let matches: Vec<u32> = if step.to_child {
                self.indexes.children(table, step.build_col, key).to_vec()
            } else {
                self.indexes.pk_lookup(table, key).into_iter().collect()
            };
            let passing: Vec<u32> = matches
                .into_iter()
                .filter(|&r| passes(self.db, query, table, r as usize))
                .collect();
            if passing.is_empty() {
                return 0.0;
            }
            weight *= passing.len() as f64;
            rows[level + 1] = passing[self.rng.gen_range(0..passing.len())] as usize;
        }
        weight
    }
}

/// Does `row` of `table` satisfy every predicate of `query` on that table?
fn passes(db: &Database, query: &Query, table: TableId, row: usize) -> bool {
    query
        .predicates_on(table)
        .all(|p: &Predicate| p.passes(&db.table(table).value(row, p.column)))
}

struct WalkStep {
    from_level: usize,
    probe_col: usize,
    build_col: usize,
    /// True when the new table is the FK child (index lookup can return many
    /// rows); false for unique parent lookups.
    to_child: bool,
}

struct WalkPlan {
    order: Vec<TableId>,
    steps: Vec<WalkStep>,
}

impl WalkPlan {
    fn new(db: &Database, query: &Query) -> Option<Self> {
        if query.tables.is_empty() {
            return None;
        }
        // Start from the table with the most predicates (standard IBJS
        // heuristic: shrink the sample early).
        let mut tables = query.tables.clone();
        tables.sort_by_key(|&t| std::cmp::Reverse(query.predicates_on(t).count()));
        let mut order = vec![tables[0]];
        let mut remaining: Vec<TableId> = tables[1..].to_vec();
        let mut steps = Vec::new();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&t| order.iter().any(|&u| db.edge_between(u, t).is_some()))?;
            let t = remaining.remove(pos);
            let (from_level, fk) = order
                .iter()
                .enumerate()
                .find_map(|(l, &u)| db.edge_between(u, t).map(|fk| (l, *fk)))
                .expect("position guarantees an edge");
            let (probe_col, build_col, to_child) = if fk.child_table == t {
                (fk.parent_col, fk.child_col, true)
            } else {
                (fk.child_col, fk.parent_col, false)
            };
            steps.push(WalkStep {
                from_level,
                probe_col,
                build_col,
                to_child,
            });
            order.push(t);
        }
        Some(Self { order, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{execute, CmpOp, PredOp, Value};

    fn qerr(est: f64, truth: f64) -> f64 {
        let t = truth.max(1.0);
        (est / t).max(t / est.max(1e-9))
    }

    #[test]
    fn join_estimates_are_unbiased_enough() {
        let db = correlated_customer_order(2000, 3);
        let idx = Indexes::build(&db);
        let mut ibjs = Ibjs::new(&db, &idx, 2000, 7);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = ibjs.estimate(&q);
        assert!(qerr(est, truth) < 1.3, "est {est} vs truth {truth}");
    }

    #[test]
    fn correlated_predicates_handled_via_sampling() {
        // Unlike the Postgres-style estimator, sampling sees the correlation.
        let db = correlated_customer_order(3000, 4);
        let idx = Indexes::build(&db);
        let mut ibjs = Ibjs::new(&db, &idx, 4000, 1);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        assert!(qerr(ibjs.estimate(&q), truth) < 1.35);
    }

    #[test]
    fn zero_matching_samples_fall_back_to_one() {
        let db = correlated_customer_order(500, 5);
        let idx = Indexes::build(&db);
        let mut ibjs = Ibjs::new(&db, &idx, 200, 2);
        let c = db.table_id("customer").unwrap();
        // Impossible predicate → no walk survives → fallback 1.
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Gt, Value::Int(10_000)));
        assert_eq!(ibjs.estimate(&q), 1.0);
    }

    #[test]
    fn single_table_estimate_equals_scaled_selectivity() {
        let db = correlated_customer_order(2000, 6);
        let idx = Indexes::build(&db);
        let mut ibjs = Ibjs::new(&db, &idx, 3000, 3);
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(50)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        assert!(qerr(ibjs.estimate(&q), truth) < 1.2);
    }
}
