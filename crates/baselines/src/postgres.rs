//! Postgres-style cardinality estimation: per-column most-common-value
//! lists, equi-depth histograms, `n_distinct`, and `null_frac`, combined
//! under the attribute-independence assumption with System-R join
//! selectivities (`1/max(nd(a), nd(b))`).
//!
//! This reproduces the algorithmic behaviour of the "Postgres 11.5"
//! non-learned baseline in Table 1, including its signature failure mode:
//! multiplying per-predicate selectivities ignores correlations within and
//! across tables.

use std::collections::HashMap;

use deepdb_storage::{CmpOp, ColId, Database, Domain, PredOp, Predicate, Query, TableId};

/// Number of most-common values tracked per column.
const N_MCV: usize = 25;
/// Number of equi-depth histogram buckets.
const N_BUCKETS: usize = 100;
/// Default equality selectivity when nothing is known.
const DEFAULT_EQ_SEL: f64 = 0.005;

/// Statistics for one column.
#[derive(Debug, Clone)]
struct ColumnStats {
    null_frac: f64,
    n_distinct: f64,
    /// (value, frequency) of the most common values, frequency relative to
    /// all rows.
    mcvs: Vec<(f64, f64)>,
    /// Equi-depth bucket bounds over the non-MCV values (ascending).
    bounds: Vec<f64>,
    /// Mass not covered by MCVs or NULLs.
    rest_mass: f64,
}

/// The estimator: per-table row counts and per-column statistics.
#[derive(Debug, Clone)]
pub struct PostgresEstimator {
    rows: Vec<f64>,
    stats: HashMap<(TableId, ColId), ColumnStats>,
}

impl PostgresEstimator {
    /// ANALYZE: scan every modeled column and collect statistics.
    pub fn analyze(db: &Database) -> Self {
        let mut stats = HashMap::new();
        let mut rows = Vec::with_capacity(db.n_tables());
        for t in 0..db.n_tables() {
            let table = db.table(t);
            rows.push(table.n_rows() as f64);
            for (c, def) in table.schema().columns().iter().enumerate() {
                let track_for_join = matches!(def.domain, Domain::Key);
                if !def.domain.is_modelled() && !track_for_join {
                    continue;
                }
                stats.insert((t, c), column_stats(table, c));
            }
        }
        Self { rows, stats }
    }

    /// Estimated cardinality of an inner-join COUNT query (≥ 1).
    pub fn estimate(&self, db: &Database, query: &Query) -> f64 {
        let mut card: f64 = query
            .tables
            .iter()
            .map(|&t| self.rows[t].max(1.0))
            .product();
        // Join selectivities: one factor per FK edge in the join tree.
        let mut joined: Vec<TableId> = vec![query.tables[0]];
        let mut remaining: Vec<TableId> = query.tables[1..].to_vec();
        while !remaining.is_empty() {
            let Some(pos) = remaining
                .iter()
                .position(|&t| joined.iter().any(|&u| db.edge_between(u, t).is_some()))
            else {
                break;
            };
            let t = remaining.remove(pos);
            let u = *joined
                .iter()
                .find(|&&u| db.edge_between(u, t).is_some())
                .expect("position guarantees an edge");
            let fk = db.edge_between(u, t).expect("edge");
            let nd_child = self
                .stats
                .get(&(fk.child_table, fk.child_col))
                .map_or(1.0, |s| s.n_distinct);
            let nd_parent = self
                .stats
                .get(&(fk.parent_table, fk.parent_col))
                .map_or(1.0, |s| s.n_distinct);
            card /= nd_child.max(nd_parent).max(1.0);
            joined.push(t);
        }
        // Predicate selectivities multiplied independently.
        for p in &query.predicates {
            card *= self.selectivity(p);
        }
        card.max(1.0)
    }

    /// Selectivity of a single predicate under the collected statistics.
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        let Some(stats) = self.stats.get(&(pred.table, pred.column)) else {
            return DEFAULT_EQ_SEL;
        };
        stats.selectivity(&pred.op).clamp(0.0, 1.0)
    }
}

fn column_stats(table: &deepdb_storage::Table, c: ColId) -> ColumnStats {
    let col = table.column(c);
    let n = table.n_rows();
    let mut values: Vec<f64> = Vec::with_capacity(n);
    let mut nulls = 0usize;
    for r in 0..n {
        let v = col.f64_or_nan(r);
        if v.is_finite() {
            values.push(v);
        } else {
            nulls += 1;
        }
    }
    let null_frac = if n == 0 { 0.0 } else { nulls as f64 / n as f64 };
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // Frequency map via run-length over the sorted values.
    let mut freqs: Vec<(f64, usize)> = Vec::new();
    for &v in &values {
        match freqs.last_mut() {
            Some((lv, c)) if *lv == v => *c += 1,
            _ => freqs.push((v, 1)),
        }
    }
    let n_distinct = freqs.len() as f64;
    let mut by_freq = freqs.clone();
    by_freq.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let mcvs: Vec<(f64, f64)> = by_freq
        .iter()
        .take(N_MCV.min(by_freq.len()))
        .filter(|(_, c)| *c > 1 || by_freq.len() <= N_MCV)
        .map(|&(v, c)| (v, c as f64 / n.max(1) as f64))
        .collect();
    let mcv_set: Vec<f64> = mcvs.iter().map(|&(v, _)| v).collect();

    // Histogram over the values not covered by MCVs.
    let rest: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| !mcv_set.contains(v))
        .collect();
    let rest_mass = rest.len() as f64 / n.max(1) as f64;
    let mut bounds = Vec::new();
    if !rest.is_empty() {
        let buckets = N_BUCKETS.min(rest.len());
        for b in 0..=buckets {
            let idx = (b * (rest.len() - 1)) / buckets.max(1);
            bounds.push(rest[idx]);
        }
        bounds.dedup();
    }
    ColumnStats {
        null_frac,
        n_distinct,
        mcvs,
        bounds,
        rest_mass,
    }
}

impl ColumnStats {
    fn eq_sel(&self, v: f64) -> f64 {
        if let Some(&(_, f)) = self.mcvs.iter().find(|&&(mv, _)| mv == v) {
            return f;
        }
        let covered: f64 = self.mcvs.iter().map(|&(_, f)| f).sum();
        let rest_distinct = (self.n_distinct - self.mcvs.len() as f64).max(1.0);
        ((1.0 - covered - self.null_frac) / rest_distinct).max(0.0)
    }

    /// Fraction of rows with value < v (or ≤ v), from MCVs + histogram.
    fn cumulative(&self, v: f64, inclusive: bool) -> f64 {
        let mut acc = 0.0;
        for &(mv, f) in &self.mcvs {
            if mv < v || (inclusive && mv == v) {
                acc += f;
            }
        }
        if self.bounds.len() >= 2 {
            let lo = self.bounds[0];
            let hi = *self.bounds.last().expect("nonempty");
            let frac = if v <= lo {
                0.0
            } else if v >= hi {
                1.0
            } else {
                // Locate the bucket and interpolate linearly inside it.
                let buckets = self.bounds.len() - 1;
                let mut pos = 0.0;
                for w in 0..buckets {
                    let (a, b) = (self.bounds[w], self.bounds[w + 1]);
                    if v >= b {
                        pos += 1.0;
                    } else if v > a {
                        pos += (v - a) / (b - a).max(1e-12);
                        break;
                    } else {
                        break;
                    }
                }
                pos / buckets as f64
            };
            acc += frac * self.rest_mass;
        }
        acc
    }

    fn selectivity(&self, op: &PredOp) -> f64 {
        match op {
            PredOp::IsNull => self.null_frac,
            PredOp::IsNotNull => 1.0 - self.null_frac,
            PredOp::Cmp(cmp, v) => {
                let Some(v) = v.as_f64() else { return 0.0 };
                match cmp {
                    CmpOp::Eq => self.eq_sel(v),
                    CmpOp::Ne => (1.0 - self.eq_sel(v) - self.null_frac).max(0.0),
                    CmpOp::Lt => self.cumulative(v, false),
                    CmpOp::Le => self.cumulative(v, true),
                    CmpOp::Gt => (1.0 - self.null_frac - self.cumulative(v, true)).max(0.0),
                    CmpOp::Ge => (1.0 - self.null_frac - self.cumulative(v, false)).max(0.0),
                }
            }
            PredOp::In(vs) => vs
                .iter()
                .filter_map(|v| v.as_f64())
                .map(|v| self.eq_sel(v))
                .sum(),
            PredOp::Between(lo, hi) => match (lo.as_f64(), hi.as_f64()) {
                (Some(a), Some(b)) => {
                    (self.cumulative(b, true) - self.cumulative(a, false)).max(0.0)
                }
                _ => 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{execute, Value};

    fn qerr(est: f64, truth: f64) -> f64 {
        let t = truth.max(1.0);
        (est / t).max(t / est.max(1e-9))
    }

    #[test]
    fn single_table_equality_is_accurate() {
        let db = correlated_customer_order(3000, 5);
        let est = PostgresEstimator::analyze(&db);
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        assert!(qerr(est.estimate(&db, &q), truth) < 1.2);
    }

    #[test]
    fn range_predicates_use_histogram() {
        let db = correlated_customer_order(3000, 6);
        let est = PostgresEstimator::analyze(&db);
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(40)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        assert!(qerr(est.estimate(&db, &q), truth) < 1.3);
    }

    #[test]
    fn fk_join_without_predicates_matches_child_count() {
        let db = correlated_customer_order(2000, 7);
        let est = PostgresEstimator::analyze(&db);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]);
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        // System-R FK join estimate: |C|·|O| / max(nd) = |O| — near exact here.
        assert!(qerr(est.estimate(&db, &q), truth) < 1.2);
    }

    #[test]
    fn correlated_join_predicates_are_underestimated() {
        // The independence assumption must show its signature failure: for
        // correlated cross-table predicates the product of selectivities is
        // biased. We only assert the estimator *runs* and errs by more than
        // an exact oracle would.
        let db = correlated_customer_order(3000, 8);
        let est = PostgresEstimator::analyze(&db);
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // region=EUROPE (older, more orders) ∧ channel=STORE (European habit):
        // positively correlated through the join.
        let q = Query::count(vec![c, o])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
            .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let e = est.estimate(&db, &q);
        assert!(
            qerr(e, truth) > 1.3,
            "independence should bias this estimate: {e} vs {truth}"
        );
    }

    #[test]
    fn null_fraction_is_tracked() {
        let db = correlated_customer_order(1000, 9);
        let est = PostgresEstimator::analyze(&db);
        let c = db.table_id("customer").unwrap();
        let sel = est.selectivity(&Predicate::new(c, 1, PredOp::IsNotNull));
        assert!((sel - 1.0).abs() < 1e-9, "age column has no NULLs");
    }
}
