//! Uniform random sampling: the naive cardinality baseline of Table 1 and
//! the sample-based confidence-interval ground truth of Figure 11.

use deepdb_storage::{
    execute, Aggregate, Database, JoinTree, Predicate, Query, StorageError, TableId, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-table Bernoulli samples with scale-up estimation ("Random Sampling"
/// in Table 1).
pub struct RandomSampling {
    sampled: Database,
    /// Sampling rate per table id.
    rates: Vec<f64>,
}

impl RandomSampling {
    /// Draw a Bernoulli sample of every table at `rate`.
    ///
    /// Foreign keys are copied as-is: dangling references in the sampled
    /// database are expected (joins between independently sampled sides are
    /// exactly what makes this baseline collapse on selective queries).
    pub fn build(db: &Database, rate: f64, seed: u64) -> Result<Self, StorageError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampled = Database::new(format!("{}_sample", db.name()));
        let mut rates = Vec::with_capacity(db.n_tables());
        for t in 0..db.n_tables() {
            let table = db.table(t);
            sampled.create_table(table.schema().clone())?;
            let mut kept = 0usize;
            for r in 0..table.n_rows() {
                if rng.gen::<f64>() < rate {
                    sampled.table_mut(t).push_row(&table.row_values(r))?;
                    kept += 1;
                }
            }
            rates.push(if table.n_rows() == 0 {
                1.0
            } else {
                kept as f64 / table.n_rows() as f64
            });
        }
        for fk in db.foreign_keys() {
            let child = db.table(fk.child_table).schema().name().to_string();
            let parent = db.table(fk.parent_table).schema().name().to_string();
            let child_col = db
                .table(fk.child_table)
                .schema()
                .column(fk.child_col)
                .name
                .clone();
            sampled.add_foreign_key(&child, &child_col, &parent)?;
        }
        Ok(Self { sampled, rates })
    }

    /// Cardinality estimate: run the query on the samples, scale by the
    /// inverse sampling rates (≥ 1 by the q-error convention).
    pub fn estimate(&self, query: &Query) -> f64 {
        let Ok(out) = execute(&self.sampled, query) else {
            return 1.0;
        };
        let scale: f64 = query
            .tables
            .iter()
            .map(|&t| 1.0 / self.rates[t].max(1e-12))
            .product();
        (out.scalar().count as f64 * scale).max(1.0)
    }
}

/// Result of a sample-based AQP estimate with its classical confidence
/// interval (Figure 11's ground-truth series).
#[derive(Debug, Clone, Copy)]
pub struct SampleCi {
    pub estimate: f64,
    pub ci_low: f64,
    pub ci_high: f64,
    /// Qualifying sample rows (estimates with < 10 are excluded in the
    /// paper's figure).
    pub qualifying: usize,
}

/// Classical sample-based estimate + CI for COUNT/SUM/AVG over a join,
/// using `n` uniform samples of the join (paper §6.2: binomial for COUNT,
/// CLT for AVG, product estimator for SUM).
pub fn sample_based_ci(
    db: &Database,
    query: &Query,
    n: usize,
    confidence: f64,
    seed: u64,
) -> Result<SampleCi, StorageError> {
    let tree = JoinTree::new(db, &query.tables)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = tree.sample(db, n, &mut rng);
    let join_size = tree.full_count() as f64;

    // Resolve predicate and aggregate columns in the sample.
    let col_of = |table: TableId, col: usize| -> Option<usize> {
        sample.columns.iter().position(|c| {
            matches!(c.role, deepdb_storage::JoinColumnRole::Data { table: t, col: cc } if t == table && cc == col)
        })
    };
    let indicator_of = |table: TableId| -> Option<usize> {
        sample.columns.iter().position(
            |c| matches!(c.role, deepdb_storage::JoinColumnRole::Indicator { table: t } if t == table),
        )
    };
    let preds: Vec<(usize, &Predicate)> = query
        .predicates
        .iter()
        .filter_map(|p| col_of(p.table, p.column).map(|c| (c, p)))
        .collect();
    let indicators: Vec<usize> = query
        .tables
        .iter()
        .filter_map(|&t| indicator_of(t))
        .collect();
    let agg_col = query
        .aggregate_input()
        .and_then(|c| col_of(c.table, c.column));

    let mut qualifying = 0usize;
    let mut vals: Vec<f64> = Vec::new();
    for i in 0..sample.n_samples {
        if indicators.iter().any(|&c| sample.data[c][i] != 1.0) {
            continue;
        }
        let ok = preds.iter().all(|&(c, p)| {
            let v = sample.data[c][i];
            let value = if v.is_nan() {
                Value::Null
            } else {
                Value::Float(v)
            };
            p.passes(&value)
        });
        if !ok {
            continue;
        }
        qualifying += 1;
        if let Some(c) = agg_col {
            let v = sample.data[c][i];
            if v.is_finite() {
                vals.push(v);
            }
        }
    }

    let z = crate::normal_z(confidence);
    let nf = sample.n_samples as f64;
    let p_hat = qualifying as f64 / nf;
    let count_est = join_size * p_hat;
    let count_sd = join_size * (p_hat * (1.0 - p_hat) / nf).sqrt();

    let (mean, mean_sd) = if vals.is_empty() {
        (0.0, 0.0)
    } else {
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (vals.len() as f64 - 1.0).max(1.0);
        (m, (var / vals.len() as f64).sqrt())
    };

    let out = match query.aggregate {
        Aggregate::CountStar => SampleCi {
            estimate: count_est,
            ci_low: count_est - z * count_sd,
            ci_high: count_est + z * count_sd,
            qualifying,
        },
        Aggregate::Avg(_) => SampleCi {
            estimate: mean,
            ci_low: mean - z * mean_sd,
            ci_high: mean + z * mean_sd,
            qualifying,
        },
        Aggregate::Sum(_) => {
            // Product of the count and mean estimators (paper §6.2).
            let est = count_est * mean;
            let var = count_sd * count_sd * mean_sd * mean_sd
                + count_sd * count_sd * mean * mean
                + mean_sd * mean_sd * count_est * count_est;
            let sd = var.sqrt();
            SampleCi {
                estimate: est,
                ci_low: est - z * sd,
                ci_high: est + z * sd,
                qualifying,
            }
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{CmpOp, ColumnRef, PredOp};

    #[test]
    fn scaled_estimates_track_truth_on_broad_queries() {
        let db = correlated_customer_order(3000, 2);
        let rs = RandomSampling::build(&db, 0.1, 1).unwrap();
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 1, PredOp::Cmp(CmpOp::Ge, Value::Int(40)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = rs.estimate(&q);
        let qe = (est / truth).max(truth / est);
        assert!(qe < 1.3, "est {est} vs {truth}");
    }

    #[test]
    fn joins_of_samples_underestimate_without_luck() {
        // Join of two 10% samples keeps ~1% of pairs; the scale-up keeps the
        // estimator unbiased but high-variance. Just check it runs and lands
        // within an order of magnitude on a broad query.
        let db = correlated_customer_order(3000, 3);
        let rs = RandomSampling::build(&db, 0.1, 2).unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]);
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let est = rs.estimate(&q);
        assert!(
            est > truth / 10.0 && est < truth * 10.0,
            "est {est} vs {truth}"
        );
    }

    #[test]
    fn selective_queries_collapse_to_fallback() {
        let db = correlated_customer_order(500, 4);
        let rs = RandomSampling::build(&db, 0.02, 3).unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        // Very selective: no sampled row qualifies → fallback 1.
        let q = Query::count(vec![c, o])
            .filter(c, 1, PredOp::Cmp(CmpOp::Eq, Value::Int(83)))
            .filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(499.0)));
        assert_eq!(rs.estimate(&q), 1.0);
    }

    #[test]
    fn sample_ci_brackets_truth_for_count_and_avg() {
        let db = correlated_customer_order(4000, 5);
        let c = db.table_id("customer").unwrap();
        let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let ci = sample_based_ci(&db, &q, 20_000, 0.95, 7).unwrap();
        assert!(
            ci.ci_low <= truth && truth <= ci.ci_high,
            "CI [{}, {}] vs {truth}",
            ci.ci_low,
            ci.ci_high
        );

        let qa = Query::count(vec![c])
            .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(1)))
            .aggregate(Aggregate::Avg(ColumnRef {
                table: c,
                column: 1,
            }));
        let truth_avg = execute(&db, &qa).unwrap().scalar().avg().unwrap();
        let ci = sample_based_ci(&db, &qa, 20_000, 0.95, 8).unwrap();
        assert!(ci.ci_low <= truth_avg && truth_avg <= ci.ci_high);
        assert!(ci.qualifying > 1000);
    }
}
