//! Baseline systems the paper compares DeepDB against — each re-implemented
//! from its published algorithm (no external systems):
//!
//! **Cardinality estimation (Exp. 1, Table 1 / Figures 1, 7):**
//! * [`postgres`] — the textbook MCV + equi-depth-histogram estimator with
//!   attribute independence and System-R join selectivities (Postgres 11.5's
//!   approach).
//! * [`ibjs`] — Index-Based Join Sampling (Leis et al., CIDR 2017).
//! * [`sampling`] — uniform per-table random sampling with scale-up.
//! * [`mcsn`] — the workload-driven Multi-Set Convolutional Network
//!   (Kipf et al., CIDR 2019), trained on executed queries.
//!
//! **AQP (Exp. 2, Figures 9–12):**
//! * [`verdict`] — VerdictDB-style offline uniform "scrambles".
//! * [`tablesample`] — `TABLESAMPLE`-style per-query Bernoulli sampling.
//! * [`wanderjoin`] — Wander Join index random walks (Li et al., SIGMOD'16).
//! * [`dbest`] — DBEst-style per-query-template models with cumulative
//!   training-time accounting (Ma & Triantafillou, SIGMOD 2019).
//! * [`sampling::sample_based_ci`] — the sample-based confidence-interval
//!   ground truth of Figure 11.
//!
//! **ML (Exp. 3, Figure 13):**
//! * [`regtree`] — a CART regression tree;
//! * the MLP baseline reuses `deepdb-nn` directly.

pub mod dbest;
pub mod ibjs;
pub mod mcsn;
pub mod postgres;
pub mod regtree;
pub mod sampling;
pub mod tablesample;
pub mod verdict;
pub mod wanderjoin;

/// Two-sided standard-normal quantile for a confidence level
/// (0.95 → ≈1.96). Acklam's rational approximation.
pub fn normal_z(confidence: f64) -> f64 {
    let p = 0.5 + confidence.clamp(0.0, 0.9999) / 2.0;
    // Central-region branch of Acklam's inverse normal CDF (p ∈ [0.5, 1)).
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    if p <= 1.0 - 0.02425 {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn normal_z_matches_tables() {
        assert!((super::normal_z(0.95) - 1.959964).abs() < 1e-4);
        assert!((super::normal_z(0.99) - 2.575829).abs() < 1e-4);
        assert!(super::normal_z(0.5) > 0.67 && super::normal_z(0.5) < 0.68);
    }
}
