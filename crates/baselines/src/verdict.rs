//! VerdictDB-style AQP (Park et al., SIGMOD 2018): offline uniform
//! "scrambles" of the fact tables, queried with scale-up.
//!
//! Fact tables (FK children) are sampled once at build time; dimension
//! tables stay complete. At query time the query runs on the scramble and
//! COUNT/SUM results are scaled by the inverse sampling rate. Build time —
//! the scramble creation the paper reports as hours/days — is measured.

use std::time::{Duration, Instant};

use deepdb_storage::{
    execute, AggResult, Aggregate, Database, Query, QueryOutput, StorageError, TableId, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A built set of scrambles.
pub struct VerdictDb {
    scramble: Database,
    rates: Vec<f64>,
    /// Offline scramble-construction time.
    pub build_time: Duration,
}

/// Tables considered "fact" tables: FK children (they hold the bulk of the
/// rows in star/snowflake schemas).
fn is_fact(db: &Database, t: TableId) -> bool {
    db.foreign_keys().iter().any(|fk| fk.child_table == t) || db.foreign_keys().is_empty()
    // single-table datasets
}

impl VerdictDb {
    /// Build uniform scrambles at `rate` for every fact table.
    pub fn build(db: &Database, rate: f64, seed: u64) -> Result<Self, StorageError> {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scramble = Database::new(format!("{}_scramble", db.name()));
        let mut rates = vec![1.0; db.n_tables()];
        #[allow(clippy::needless_range_loop)]
        for t in 0..db.n_tables() {
            let table = db.table(t);
            scramble.create_table(table.schema().clone())?;
            if is_fact(db, t) {
                let mut kept = 0usize;
                for r in 0..table.n_rows() {
                    if rng.gen::<f64>() < rate {
                        scramble.table_mut(t).push_row(&table.row_values(r))?;
                        kept += 1;
                    }
                }
                rates[t] = if table.n_rows() == 0 {
                    1.0
                } else {
                    kept as f64 / table.n_rows() as f64
                };
            } else {
                for r in 0..table.n_rows() {
                    scramble.table_mut(t).push_row(&table.row_values(r))?;
                }
            }
        }
        for fk in db.foreign_keys() {
            let child = db.table(fk.child_table).schema().name().to_string();
            let parent = db.table(fk.parent_table).schema().name().to_string();
            let child_col = db
                .table(fk.child_table)
                .schema()
                .column(fk.child_col)
                .name
                .clone();
            scramble.add_foreign_key(&child, &child_col, &parent)?;
        }
        Ok(Self {
            scramble,
            rates,
            build_time: t0.elapsed(),
        })
    }

    /// Scale factor for COUNT/SUM answers of a query.
    fn scale(&self, query: &Query) -> f64 {
        query
            .tables
            .iter()
            .map(|&t| 1.0 / self.rates[t].max(1e-12))
            .product()
    }

    /// Approximate answer + wall-clock latency. Grouped queries return
    /// per-group values; `None` when no sample qualifies (the paper's "No
    /// result" bars).
    pub fn query(&self, query: &Query) -> (Option<QueryOutput>, Duration) {
        let t0 = Instant::now();
        let out = execute(&self.scramble, query)
            .ok()
            .map(|o| self.rescale(query, o));
        let elapsed = t0.elapsed();
        let has_result = out.as_ref().is_some_and(|o| match o {
            QueryOutput::Scalar(a) => a.count > 0,
            QueryOutput::Grouped(g) => !g.is_empty(),
        });
        (if has_result { out } else { None }, elapsed)
    }

    fn rescale(&self, query: &Query, out: QueryOutput) -> QueryOutput {
        let s = self.scale(query);
        // Scale every extensive quantity; AVG = sum/non_null stays invariant.
        let fix = |a: &AggResult| AggResult {
            count: (a.count as f64 * s).round() as u64,
            sum: a.sum * s,
            non_null: (a.non_null as f64 * s).round() as u64,
        };
        match out {
            QueryOutput::Scalar(a) => QueryOutput::Scalar(fix(&a)),
            QueryOutput::Grouped(g) => {
                QueryOutput::Grouped(g.iter().map(|(k, a)| (k.clone(), fix(a))).collect())
            }
        }
    }

    /// Scalar value of the query's aggregate under the scramble (AVG is not
    /// scaled; COUNT/SUM are). `None` when no sample qualifies.
    pub fn aggregate_value(&self, query: &Query) -> (Option<f64>, Duration) {
        let (out, lat) = self.query(query);
        let v = out.and_then(|o| {
            let a = o.scalar();
            match query.aggregate {
                Aggregate::CountStar => Some(a.count as f64),
                Aggregate::Sum(_) => (a.count > 0).then_some(a.sum),
                // AVG is scale-free but needs the *unscaled* count ratio —
                // sum and non_null scale identically, so the ratio is fine.
                Aggregate::Avg(_) => a.avg(),
            }
        });
        (v, lat)
    }

    /// Grouped values keyed as the executor reports them.
    #[allow(clippy::type_complexity)]
    pub fn grouped_values(&self, query: &Query) -> (Vec<(Vec<Value>, Option<f64>)>, Duration) {
        let (out, lat) = self.query(query);
        let groups = out
            .map(|o| {
                o.groups()
                    .iter()
                    .map(|(k, a)| (k.clone(), a.value_for(query.aggregate)))
                    .collect()
            })
            .unwrap_or_default();
        (groups, lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepdb_storage::fixtures::correlated_customer_order;
    use deepdb_storage::{CmpOp, ColumnRef, PredOp};

    #[test]
    fn scaled_count_tracks_truth() {
        let db = correlated_customer_order(3000, 10);
        let v = VerdictDb::build(&db, 0.2, 1).unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        let truth = execute(&db, &q).unwrap().scalar().count as f64;
        let (est, lat) = v.aggregate_value(&q);
        let est = est.unwrap();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "rel {rel}");
        assert!(lat.as_nanos() > 0);
    }

    #[test]
    fn avg_is_not_scaled() {
        let db = correlated_customer_order(3000, 11);
        let v = VerdictDb::build(&db, 0.25, 2).unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).aggregate(Aggregate::Avg(ColumnRef {
            table: o,
            column: 3,
        }));
        let truth = execute(&db, &q).unwrap().scalar().avg().unwrap();
        let (est, _) = v.aggregate_value(&q);
        let rel = (est.unwrap() - truth).abs() / truth;
        assert!(rel < 0.1, "rel {rel}");
    }

    #[test]
    fn no_qualifying_sample_returns_none() {
        let db = correlated_customer_order(400, 12);
        let v = VerdictDb::build(&db, 0.01, 3).unwrap();
        let c = db.table_id("customer").unwrap();
        let o = db.table_id("orders").unwrap();
        let q = Query::count(vec![c, o]).filter(o, 3, PredOp::Cmp(CmpOp::Gt, Value::Float(499.5)));
        let (est, _) = v.aggregate_value(&q);
        assert!(
            est.is_none(),
            "ultra-selective query on a tiny scramble should fail"
        );
    }

    #[test]
    fn dimension_tables_stay_complete() {
        let db = correlated_customer_order(500, 13);
        let v = VerdictDb::build(&db, 0.1, 4).unwrap();
        let c = db.table_id("customer").unwrap();
        // customer is a dimension (FK parent) here — kept complete.
        assert_eq!(v.scramble.table(c).n_rows(), db.table(c).n_rows());
    }
}
