//! # DeepDB-rs
//!
//! A from-scratch Rust reproduction of *DeepDB: Learn from Data, not from
//! Queries!* (Hilprecht et al., VLDB 2020): data-driven learned database
//! components built on **Relational Sum-Product Networks (RSPNs)**.
//!
//! DeepDB learns an ensemble of RSPNs over (samples of) a database's tables
//! and their full outer joins, then compiles SQL-style aggregate queries
//! into products of expectations over that ensemble. One offline learning
//! pass serves:
//!
//! * **cardinality estimation** ([`compile::estimate_cardinality`]),
//! * **approximate query processing** with confidence intervals
//!   ([`execute_aqp`]),
//! * **ML tasks** — regression and classification — with no extra training
//!   ([`ml`]),
//! * and **direct updates**: inserts/deletes are absorbed by the models
//!   without retraining ([`Ensemble::apply_insert`]).
//!
//! ## Quickstart
//!
//! ```
//! use deepdb::prelude::*;
//!
//! // The paper's running example: customers and their orders.
//! let db = deepdb::storage::fixtures::paper_customer_order();
//!
//! // Offline: learn the RSPN ensemble (Figure 2).
//! let params = EnsembleParams {
//!     sample_size: 10_000,
//!     rdc_threshold: 0.0, // force the joint customer⟗orders RSPN
//!     ..EnsembleParams::default()
//! };
//! let ensemble = EnsembleBuilder::new(&db).params(params).build().unwrap();
//!
//! // Runtime: estimate |customer ⋈ orders WHERE region = EUROPE AND channel = ONLINE|.
//! // The whole query surface is `&Ensemble` — queries never mutate the models.
//! let customer = db.table_id("customer").unwrap();
//! let orders = db.table_id("orders").unwrap();
//! let q = Query::count(vec![customer, orders])
//!     .filter(customer, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
//!     .filter(orders, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
//! let estimate = compile::estimate_cardinality(&ensemble, &db, &q).unwrap();
//! assert!((estimate - 1.0).abs() < 0.8); // true answer: 1 (paper Q2)
//! ```
//!
//! ## Crate layout
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | columnar tables, FK catalog, ground-truth executor, full-outer-join sampler |
//! | [`spn`] | RDC, k-means, leaves, SPN learning/updates; recursive oracle **and** the compiled arena/batch engine ([`spn::CompiledSpn`], [`spn::BatchEvaluator`]) |
//! | [`core_`] | RSPNs, ensembles, probabilistic query compilation, AQP, CIs, ML |
//! | [`linalg`] | dense matrices, Cholesky, symmetric eigen, CCA (for RDC) |
//! | [`nn`] | MLP + Adam + multi-set network (for the learned baselines) |
//! | [`baselines`] | Postgres-style, IBJS, sampling, MCSN, VerdictDB-, TABLESAMPLE-, WanderJoin-, DBEst-style, regression tree |
//! | [`data`] | synthetic IMDb (JOB-light), SSB, Flights generators + workloads |
//!
//! ## Inference engine
//!
//! Every probe issued by the layers above — expectation probes for
//! cardinality/AQP **and** max-product MPE probes for classification — runs
//! on the **arena-compiled** SPN: the tree is flattened into contiguous
//! struct-of-arrays storage in bottom-up topological order and whole probe
//! batches are evaluated in one non-recursive sweep
//! ([`spn::BatchEvaluator`] in the (+, ×) semiring,
//! [`spn::MaxProductEvaluator`] in (max, ×) with deterministic
//! lowest-child-wins tie-breaking and O(1) cached leaf-mode backtraces).
//! Models compile at learn/load time; inserts and deletes then **patch the
//! arena in place** (lockstep with the tree, O(depth) per tuple, bitwise
//! identical to a recompile — cached modes included), so the engines are
//! never stale between updates and queries — [`Ensemble::recompile_models`]
//! remains only as an explicit structural-maintenance entry point. The
//! **entire query surface takes `&Ensemble`** — cardinality, AQP, and the
//! ML entry points, which ship batched forms
//! ([`ml::predict_classification_batch`], [`ml::predict_regression_batch`])
//! answering K evidence rows in one arena sweep of the touched member.
//! Multi-RSPN (Case-3) joins are planned **symbolically**
//! ([`core_::combine`]): one walk of the FK graph registers every extension
//! step's probe bundles on one fused plan, and a `Scale`/`Product`/`Divide`
//! expression tree resolves after the sweep. Both retired evaluation
//! strategies — the recursive SPN walk and the eager per-step combine loop
//! — survive **only** as differential-test oracles.

pub use deepdb_baselines as baselines;
pub use deepdb_core as core_;
pub use deepdb_data as data;
pub use deepdb_linalg as linalg;
pub use deepdb_nn as nn;
pub use deepdb_spn as spn;
pub use deepdb_storage as storage;

// Flat re-exports of the primary public API.
pub use deepdb_core::{
    compile, execute_aqp, ml, query_literals, AqpOutput, AqpResult, CacheStats, DeepDbError,
    Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, Estimate, FaultPlan, FaultSite,
    FunctionalDependency, JoinOrderer, PreparedQuery, Rspn, ServeConfig, ServeFront, ServeStats,
};
pub use deepdb_storage::{
    execute, execute_ordered, execute_ordered_with_stats, Aggregate, CmpOp, ColumnRef, Database,
    Domain, Indexes, JoinOrder, PredOp, Predicate, Query, TableSchema, Value,
};

/// Everything needed for typical use, importable as `use deepdb::prelude::*`.
pub mod prelude {
    pub use crate::{
        compile, execute, execute_aqp, execute_ordered, execute_ordered_with_stats, query_literals,
        Aggregate, AqpOutput, CacheStats, CmpOp, ColumnRef, Database, DeepDbError, Domain,
        Ensemble, EnsembleBuilder, EnsembleParams, EnsembleStrategy, Indexes, JoinOrder,
        JoinOrderer, PredOp, PreparedQuery, Query, ServeConfig, ServeFront, TableSchema, Value,
    };
}
