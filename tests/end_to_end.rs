//! End-to-end integration: datasets → ensembles → estimates/AQP/ML across
//! all crates, with accuracy thresholds.

use deepdb::data::{flights, imdb, joblight, ssb, updates, Scale};
use deepdb::prelude::*;

const SCALE: Scale = Scale {
    factor: 0.08,
    seed: 17,
};

fn params() -> EnsembleParams {
    EnsembleParams {
        sample_size: 20_000,
        correlation_sample: 1_500,
        seed: 17,
        ..EnsembleParams::default()
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[test]
fn imdb_joblight_cardinality_pipeline() {
    let db = imdb::generate(SCALE);
    db.validate_integrity().unwrap();
    let ens = EnsembleBuilder::new(&db).params(params()).build().unwrap();
    let workload = joblight::job_light(&db, 17);
    let qs: Vec<f64> = workload
        .iter()
        .take(30)
        .map(|nq| {
            let truth = execute(&db, &nq.query).unwrap().scalar().count as f64;
            let est = compile::estimate_cardinality(&ens, &db, &nq.query).unwrap();
            (est.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.max(1.0))
        })
        .collect();
    let med = median(qs);
    assert!(
        med < 2.0,
        "median q-error {med} too high for an end-to-end sanity bound"
    );
}

#[test]
fn flights_aqp_pipeline_with_confidence() {
    let db = flights::generate(SCALE);
    let ens = EnsembleBuilder::new(&db).params(params()).build().unwrap();
    let mut checked = 0;
    for nq in flights::queries(&db).iter().take(5) {
        let truth_out = execute(&db, &nq.query).unwrap();
        let out = execute_aqp(&ens, &db, &nq.query).unwrap();
        match out {
            AqpOutput::Scalar(r) => {
                let truth = truth_out
                    .scalar()
                    .value_for(nq.query.aggregate)
                    .unwrap_or(0.0);
                let rel = (r.value - truth).abs() / truth.abs().max(1.0);
                assert!(rel < 0.35, "{}: rel error {rel}", nq.name);
                assert!(
                    r.ci_low <= r.value && r.value <= r.ci_high,
                    "{}: CI ordering",
                    nq.name
                );
                checked += 1;
            }
            AqpOutput::Grouped(groups) => {
                assert!(!groups.is_empty(), "{}: no groups", nq.name);
                checked += 1;
            }
        }
    }
    assert!(checked >= 5);
}

#[test]
fn ssb_fd_declarations_answer_region_queries() {
    let db = ssb::generate(Scale {
        factor: 0.03,
        seed: 17,
    });
    let c = db.table_id("customer").unwrap();
    let s = db.table_id("supplier").unwrap();
    // Declare nation → region; region columns are then answered via the FD
    // dictionary even though they are omitted from the learned models.
    let ens = EnsembleBuilder::new(&db)
        .params(params())
        .functional_dependency(c, 2, 3)
        .functional_dependency(s, 2, 3)
        .build()
        .unwrap();
    let lo = db.table_id("lineorder").unwrap();
    let q = Query::count(vec![lo, c]).filter(c, 3, PredOp::Cmp(CmpOp::Eq, Value::Int(1)));
    let truth = execute(&db, &q).unwrap().scalar().count as f64;
    let est = compile::estimate_cardinality(&ens, &db, &q).unwrap();
    let qerr = (est / truth.max(1.0)).max(truth.max(1.0) / est);
    assert!(qerr < 1.5, "FD-translated region query: {est} vs {truth}");
}

#[test]
fn update_stream_keeps_estimates_calibrated() {
    let (mut db, stream) = updates::split_imdb_random(SCALE, 0.3, 3);
    let mut p = params();
    p.budget_factor = 0.0;
    let mut ens = EnsembleBuilder::new(&db).params(p).build().unwrap();
    for (t, values) in stream {
        ens.apply_insert(&mut db, t, &values).unwrap();
    }
    ens.refresh_join_counts(&db).unwrap();
    db.validate_integrity().unwrap();

    let workload = joblight::job_light(&db, 23);
    let qs: Vec<f64> = workload
        .iter()
        .take(20)
        .map(|nq| {
            let truth = execute(&db, &nq.query).unwrap().scalar().count as f64;
            let est = compile::estimate_cardinality(&ens, &db, &nq.query).unwrap();
            (est.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.max(1.0))
        })
        .collect();
    let med = median(qs);
    assert!(med < 2.5, "median q-error after 30% updates: {med}");
}

#[test]
fn ml_regression_beats_marginal_mean_on_correlated_target() {
    let db = flights::generate(Scale {
        factor: 0.05,
        seed: 17,
    });
    let f = db.table_id("flights").unwrap();
    let ens = EnsembleBuilder::new(&db).params(params()).build().unwrap();
    use deepdb::data::flights::cols;
    let table = db.table(f);
    // RMSE of E[air_time | distance] vs RMSE of the marginal mean.
    let mean: f64 = (0..table.n_rows())
        .map(|r| table.column(cols::AIR_TIME).f64_or_nan(r))
        .sum::<f64>()
        / table.n_rows() as f64;
    let mut se_model = 0.0;
    let mut se_mean = 0.0;
    let n_test = 150;
    for r in 0..n_test {
        let truth = table.column(cols::AIR_TIME).f64_or_nan(r);
        let d = table.value(r, cols::DISTANCE);
        let pred =
            deepdb::ml::predict_regression(&ens, &db, f, cols::AIR_TIME, &[(cols::DISTANCE, d)])
                .unwrap();
        se_model += (pred - truth) * (pred - truth);
        se_mean += (mean - truth) * (mean - truth);
    }
    assert!(
        se_model < se_mean * 0.2,
        "conditioning on distance must slash the RMSE: {} vs {}",
        (se_model / n_test as f64).sqrt(),
        (se_mean / n_test as f64).sqrt()
    );
}

#[test]
fn estimation_never_touches_base_tables_after_learning() {
    // DeepDB's contract: estimates come from the models. Drop the data
    // after learning and keep estimating.
    let db = imdb::generate(Scale {
        factor: 0.03,
        seed: 17,
    });
    let ens = EnsembleBuilder::new(&db).params(params()).build().unwrap();
    let workload = joblight::job_light(&db, 31);
    let q = &workload[0].query;
    let before = compile::estimate_cardinality(&ens, &db, q).unwrap();
    // Rebuild an empty database with the same schema: only the catalog is
    // consulted at estimation time.
    let empty = imdb::schema();
    let after = compile::estimate_cardinality(&ens, &empty, q).unwrap();
    assert_eq!(
        before, after,
        "estimates must be independent of table contents"
    );
}
