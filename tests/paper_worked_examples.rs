//! The paper's worked examples as cross-crate golden tests: every number
//! derived by hand in §3 and §4 must come out of the public API.

use deepdb::prelude::*;

fn ensemble_for(db: &Database, joint: bool) -> Ensemble {
    let params = EnsembleParams {
        sample_size: 30_000,
        rdc_threshold: if joint { 0.0 } else { 2.0 }, // force joint vs singles
        ..EnsembleParams::default()
    };
    EnsembleBuilder::new(db)
        .params(params)
        .build()
        .expect("ensemble")
}

#[test]
fn figure_5b_full_outer_join_has_five_rows() {
    let db = deepdb::storage::fixtures::paper_customer_order();
    let ens = ensemble_for(&db, true);
    let joint = ens
        .rspns()
        .iter()
        .find(|r| r.tables().len() == 2)
        .expect("joint RSPN");
    assert_eq!(joint.full_join_count(), 5);
}

#[test]
fn q1_count_european_customers_is_2_via_case_2() {
    let db = deepdb::storage::fixtures::paper_customer_order();
    let ens = ensemble_for(&db, true);
    let c = db.table_id("customer").unwrap();
    let q = Query::count(vec![c]).filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    let est = compile::estimate_count(&ens, &db, &q).unwrap();
    assert!((est.value - 2.0).abs() < 0.3, "Q1 = {}", est.value);
}

#[test]
fn q2_join_count_is_1_via_case_1_and_case_3() {
    let db = deepdb::storage::fixtures::paper_customer_order();
    let c = db.table_id("customer").unwrap();
    let o = db.table_id("orders").unwrap();
    let q = Query::count(vec![c, o])
        .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .filter(o, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
    // Case 1: the joint RSPN covers both tables.
    let joint = ensemble_for(&db, true);
    let est = compile::estimate_count(&joint, &db, &q).unwrap();
    assert!((est.value - 1.0).abs() < 0.6, "Q2 case 1 = {}", est.value);
    // Case 3: single-table RSPNs combined via tuple factors
    // (|C|·E(1_EU·F_{C←O})·E(1_ONLINE) = 3·(2/3)·(1/2) = 1, paper §4.1).
    let singles = ensemble_for(&db, false);
    assert!(singles.rspns().iter().all(|r| r.tables().len() == 1));
    let est = compile::estimate_count(&singles, &db, &q).unwrap();
    assert!((est.value - 1.0).abs() < 0.35, "Q2 case 3 = {}", est.value);
}

#[test]
fn q3_avg_age_of_europeans_is_35_not_join_weighted() {
    // §4.2: the naive join-weighted average would be (20·2 + 50)/3 = 30;
    // tuple-factor normalization recovers the per-customer 35.
    let db = deepdb::storage::fixtures::paper_customer_order();
    let ens = ensemble_for(&db, true);
    let c = db.table_id("customer").unwrap();
    let q = Query::count(vec![c])
        .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .aggregate(Aggregate::Avg(ColumnRef {
            table: c,
            column: 1,
        }));
    let est = compile::estimate_avg(&ens, &db, &q).unwrap();
    assert!((est.value - 35.0).abs() < 2.0, "Q3 = {}", est.value);
}

#[test]
fn figure_3d_style_probability_query() {
    // P(young Europeans) on a clustered population — the §3.1 walk-through,
    // validated statistically on the correlated fixture.
    let db = deepdb::storage::fixtures::correlated_customer_order(3000, 77);
    let ens = EnsembleBuilder::new(&db)
        .params(EnsembleParams {
            sample_size: 30_000,
            ..EnsembleParams::default()
        })
        .build()
        .unwrap();
    let c = db.table_id("customer").unwrap();
    let q = Query::count(vec![c])
        .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(30)));
    let truth = execute(&db, &q).unwrap().scalar().count as f64;
    let est = compile::estimate_cardinality(&ens, &db, &q).unwrap();
    let qerr = (est / truth.max(1.0)).max(truth.max(1.0) / est);
    assert!(qerr < 1.5, "estimate {est} vs truth {truth}");
}

#[test]
fn inserting_young_europeans_updates_the_model() {
    // The §3.2 motivating update scenario, end to end through the ensemble.
    let mut db = deepdb::storage::fixtures::paper_customer_order();
    let mut ens = ensemble_for(&db, true);
    let c = db.table_id("customer").unwrap();
    let q = Query::count(vec![c])
        .filter(c, 2, PredOp::Cmp(CmpOp::Eq, Value::Int(0)))
        .filter(c, 1, PredOp::Cmp(CmpOp::Lt, Value::Int(30)));
    let before = compile::estimate_count(&ens, &db, &q).unwrap().value;
    for id in 10..30 {
        ens.apply_insert(&mut db, c, &[Value::Int(id), Value::Int(25), Value::Int(0)])
            .unwrap();
    }
    let after = compile::estimate_count(&ens, &db, &q).unwrap().value;
    let truth = execute(&db, &q).unwrap().scalar().count as f64;
    assert!(
        after > before + 10.0,
        "model must absorb the inserts: {before} → {after}"
    );
    assert!(
        (after - truth).abs() / truth < 0.35,
        "after = {after}, truth = {truth}"
    );
}
