//! Cross-crate property tests: system-level invariants under randomized
//! queries and data, via proptest.

use deepdb::data::{imdb, joblight, Scale};
use deepdb::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared fixture: building ensembles is expensive, so property tests reuse
/// one (protected by OnceLock; mutation is confined to estimate-time lazy
/// caches which are rebuilt deterministically).
fn fixture() -> &'static (Database, std::sync::Mutex<Ensemble>) {
    static FIX: OnceLock<(Database, std::sync::Mutex<Ensemble>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let db = imdb::generate(Scale {
            factor: 0.03,
            seed: 5,
        });
        let ens = EnsembleBuilder::new(&db)
            .params(EnsembleParams {
                sample_size: 10_000,
                correlation_sample: 1_000,
                seed: 5,
                ..EnsembleParams::default()
            })
            .build()
            .unwrap();
        (db, std::sync::Mutex::new(ens))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cardinality estimates are finite, ≥ 1, and bounded by a generous
    /// multiple of the full join size.
    #[test]
    fn estimates_are_finite_and_positive(seed in 0u64..5_000) {
        let (db, ens) = fixture();
        let ens = ens.lock().unwrap();
        let wl = joblight::synthetic(db, &[2, 3, 4], &[1, 2], 1, seed);
        for nq in &wl {
            let est = compile::estimate_cardinality(&ens, db, &nq.query).unwrap();
            prop_assert!(est.is_finite());
            prop_assert!(est >= 1.0);
        }
    }

    /// Adding a conjunct can only shrink (or keep) the estimated count —
    /// monotonicity the executor guarantees for the truth.
    #[test]
    fn conjunction_is_monotone_in_truth(year in 1935i64..2015) {
        let (db, ens) = fixture();
        let ens = ens.lock().unwrap();
        let title = db.table_id("title").unwrap();
        let base = Query::count(vec![title]);
        let narrowed = Query::count(vec![title])
            .filter(title, 2, PredOp::Cmp(CmpOp::Ge, Value::Int(year)));
        let further = Query::count(vec![title])
            .filter(title, 2, PredOp::Cmp(CmpOp::Ge, Value::Int(year)))
            .filter(title, 1, PredOp::Cmp(CmpOp::Eq, Value::Int(0)));
        // Truth is monotone; estimates should be within noise of monotone.
        let e0 = compile::estimate_count(&ens, db, &base).unwrap().value;
        let e1 = compile::estimate_count(&ens, db, &narrowed).unwrap().value;
        let e2 = compile::estimate_count(&ens, db, &further).unwrap().value;
        prop_assert!(e1 <= e0 * 1.05, "narrowing grew the estimate: {e1} > {e0}");
        prop_assert!(e2 <= e1 * 1.05, "further narrowing grew the estimate: {e2} > {e1}");
    }

    /// Complementary predicates partition the rows: estimates of `< v` and
    /// `≥ v` must sum to (approximately) the unfiltered count.
    #[test]
    fn complementary_predicates_sum_to_total(year in 1940i64..2010) {
        let (db, ens) = fixture();
        let ens = ens.lock().unwrap();
        let title = db.table_id("title").unwrap();
        let total = compile::estimate_count(&ens, db, &Query::count(vec![title])).unwrap().value;
        let lo = compile::estimate_count(&ens, db,
            &Query::count(vec![title]).filter(title, 2, PredOp::Cmp(CmpOp::Lt, Value::Int(year)))).unwrap().value;
        let hi = compile::estimate_count(&ens, db,
            &Query::count(vec![title]).filter(title, 2, PredOp::Cmp(CmpOp::Ge, Value::Int(year)))).unwrap().value;
        let rel = ((lo + hi) - total).abs() / total.max(1.0);
        prop_assert!(rel < 0.02, "partition mismatch: {lo} + {hi} vs {total}");
    }

    /// Confidence intervals always bracket their own point estimate and
    /// widen monotonically with the confidence level.
    #[test]
    fn confidence_intervals_are_ordered(year in 1950i64..2010) {
        let (db, ens) = fixture();
        let ens = ens.lock().unwrap();
        let title = db.table_id("title").unwrap();
        let q = Query::count(vec![title]).filter(title, 2, PredOp::Cmp(CmpOp::Le, Value::Int(year)));
        let est = compile::estimate_count(&ens, db, &q).unwrap();
        let (l95, h95) = est.confidence_interval(0.95);
        let (l99, h99) = est.confidence_interval(0.99);
        prop_assert!(l95 <= est.value && est.value <= h95);
        prop_assert!(l99 <= l95 && h95 <= h99, "99% CI must contain the 95% CI");
    }

    /// The ground-truth executor agrees with itself under table reordering.
    #[test]
    fn executor_join_order_invariance(seed in 0u64..2_000) {
        let (db, _) = fixture();
        let wl = joblight::synthetic(db, &[3], &[2], 1, seed);
        for nq in &wl {
            let forward = execute(db, &nq.query).unwrap().scalar().count;
            let mut rev = nq.query.clone();
            rev.tables.reverse();
            let backward = execute(db, &rev).unwrap().scalar().count;
            prop_assert_eq!(forward, backward);
        }
    }
}
